package verify

import (
	"slices"
	"testing"

	"wasp/internal/graph"
)

func diamond() *graph.Graph {
	return graph.FromEdges(4, true, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
		{From: 0, To: 3, W: 5}, {From: 2, To: 3, W: 1},
	})
}

func TestCertificateAcceptsCorrect(t *testing.T) {
	if err := Certificate(diamond(), 0, []uint32{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateRejectsWrongSource(t *testing.T) {
	if err := Certificate(diamond(), 0, []uint32{1, 1, 2, 3}); err == nil {
		t.Fatal("accepted d(source) != 0")
	}
}

func TestCertificateRejectsUnderRelaxed(t *testing.T) {
	// d(3)=5 violates edge (2,3): d(2)+1 = 3 < 5.
	if err := Certificate(diamond(), 0, []uint32{0, 1, 2, 5}); err == nil {
		t.Fatal("accepted under-relaxed distances")
	}
}

func TestCertificateRejectsUnwitnessed(t *testing.T) {
	// d(3)=2 is feasible (no edge improves it) but unachievable: no
	// in-edge of 3 attains 2.
	if err := Certificate(diamond(), 0, []uint32{0, 1, 2, 2}); err == nil {
		t.Fatal("accepted unwitnessed distance")
	}
}

func TestCertificateRejectsWrongReachability(t *testing.T) {
	g := graph.FromEdges(3, true, []graph.Edge{{From: 0, To: 1, W: 2}})
	// Vertex 2 unreachable but marked finite.
	if err := Certificate(g, 0, []uint32{0, 2, 7}); err == nil {
		t.Fatal("accepted finite distance for unreachable vertex")
	}
	// Vertex 1 reachable but marked infinite.
	if err := Certificate(g, 0, []uint32{0, graph.Infinity, graph.Infinity}); err == nil {
		t.Fatal("accepted infinite distance for reachable vertex")
	}
}

func TestCertificateRejectsWrongLength(t *testing.T) {
	if err := Certificate(diamond(), 0, []uint32{0, 1}); err == nil {
		t.Fatal("accepted truncated distance array")
	}
}

func TestCertificateRejectsBadSource(t *testing.T) {
	if err := Certificate(diamond(), 9, []uint32{0, 1, 2, 3}); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestUpperBoundAcceptsPartial(t *testing.T) {
	g := diamond()
	// Exact distances pass the weak certificate too.
	if err := UpperBound(g, 0, []uint32{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// A mid-solve snapshot: vertex 2 and 3 not yet reached. Legal.
	if err := UpperBound(g, 0, []uint32{0, 1, graph.Infinity, graph.Infinity}); err != nil {
		t.Fatal(err)
	}
	// Over-estimates are legal upper bounds (not yet relaxed down).
	if err := UpperBound(g, 0, []uint32{0, 1, 9, 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundRejects(t *testing.T) {
	g := graph.FromEdges(3, true, []graph.Edge{{From: 0, To: 1, W: 2}})
	// Finite distance on an unreachable vertex can never be a bound.
	if err := UpperBound(g, 0, []uint32{0, 2, 7}); err == nil {
		t.Fatal("accepted finite distance for unreachable vertex")
	}
	if err := UpperBound(g, 0, []uint32{3, 2, graph.Infinity}); err == nil {
		t.Fatal("accepted d(source) != 0")
	}
	if err := UpperBound(g, 0, []uint32{0, 2}); err == nil {
		t.Fatal("accepted truncated distance array")
	}
	if err := UpperBound(g, 7, []uint32{0, 2, graph.Infinity}); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

// TestScratchReuse drives both certificates repeatedly through one
// Scratch: reuse must not corrupt state across calls (the BFS arrays
// are cleared, not reallocated) and repeat audits of the same-sized
// graph must not allocate per vertex.
func TestScratchReuse(t *testing.T) {
	g := diamond()
	s := NewScratch(2)
	for i := 0; i < 3; i++ {
		if err := s.Certificate(g, 0, []uint32{0, 1, 2, 3}); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
		if err := s.Certificate(g, 0, []uint32{0, 1, 2, 2}); err == nil {
			t.Fatalf("pass %d: accepted unwitnessed distance", i)
		}
		if err := s.UpperBound(g, 0, []uint32{0, 1, graph.Infinity, graph.Infinity}); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	// Zero value is usable.
	var zero Scratch
	if err := zero.Certificate(g, 0, []uint32{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestScratchRepeatAuditsNearZeroAllocs(t *testing.T) {
	g := graph.FromEdges(512, false, func() []graph.Edge {
		edges := make([]graph.Edge, 0, 511)
		for v := graph.Vertex(1); v < 512; v++ {
			edges = append(edges, graph.Edge{From: v - 1, To: v, W: 1})
		}
		return edges
	}())
	dist := make([]uint32, 512)
	for v := range dist {
		dist[v] = uint32(v)
	}
	s := NewScratch(1) // serial path: the parallel fork itself allocates goroutine stacks
	if err := s.Certificate(g, 0, dist); err != nil {
		t.Fatal(err)
	}
	// A handful of fixed-size closure/header escapes per call is fine;
	// what must never happen is an allocation per vertex or per edge.
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.Certificate(g, 0, dist); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("repeat audit allocates %.1f objects per run, want <= 8", allocs)
	}
}

// fuzzGraph is a fixed 32-vertex graph: a weighted spine keeping
// 0..27 reachable, pseudo-random cross edges, and an island 28..31
// the source can never reach.
func fuzzGraph() (*graph.Graph, []graph.Edge, int) {
	const n = 32
	var edges []graph.Edge
	for v := graph.Vertex(1); v < 28; v++ {
		edges = append(edges, graph.Edge{From: v - 1, To: v, W: 1 + uint32(v)%7})
	}
	r := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 40; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		edges = append(edges, graph.Edge{
			From: graph.Vertex(r % 28),
			To:   graph.Vertex((r >> 8) % 28),
			W:    1 + uint32(r>>16)%9,
		})
	}
	edges = append(edges,
		graph.Edge{From: 28, To: 29, W: 2},
		graph.Edge{From: 30, To: 31, W: 3})
	return graph.FromEdges(n, true, edges), edges, n
}

// bellmanFord is the test's independent reference: no shared code with
// the certificate under test.
func bellmanFord(n int, edges []graph.Edge, source graph.Vertex) []uint32 {
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = graph.Infinity
	}
	dist[source] = 0
	for i := 0; i < n; i++ {
		changed := false
		for _, e := range edges {
			if dist[e.From] != graph.Infinity && dist[e.From]+e.W < dist[e.To] {
				dist[e.To] = dist[e.From] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// FuzzCertificate checks the certificate's core soundness claim with
// adversarial distance arrays: exact SSSP distances are unique, so the
// certificate must accept the reference array and reject EVERY array
// that differs from it — single bit flips, multi-vertex corruption,
// infinities on reachable vertices, finite labels on the island.
func FuzzCertificate(f *testing.F) {
	g, edges, n := fuzzGraph()
	ref := bellmanFord(n, edges, 0)

	f.Add(uint32(0), uint32(0), uint32(0), uint32(0))          // identity: must accept
	f.Add(uint32(3), uint32(1<<6), uint32(0), uint32(0))       // the DistFlip fault's bit
	f.Add(uint32(30), uint32(5), uint32(0), uint32(0))         // finite label on the island
	f.Add(uint32(0), uint32(1), uint32(0), uint32(0))          // move the source off 0
	f.Add(uint32(7), uint32(1<<31), uint32(12), uint32(1<<31)) // infinities on reachable vertices

	f.Fuzz(func(t *testing.T, i1, d1, i2, d2 uint32) {
		dist := append([]uint32(nil), ref...)
		mutate := func(i, d uint32) {
			v := i % uint32(n)
			switch {
			case d == 0:
				// no-op
			case d&(1<<31) != 0:
				dist[v] = graph.Infinity
			default:
				// Mask keeps finite labels far from overflow: certificate
				// soundness is claimed for non-overflowing d(u)+w only.
				dist[v] ^= d & 0x03FFFFFF
			}
		}
		mutate(i1, d1)
		mutate(i2, d2)
		err := Certificate(g, 0, dist)
		if slices.Equal(dist, ref) {
			if err != nil {
				t.Fatalf("rejected the exact distances: %v", err)
			}
			return
		}
		if err == nil {
			t.Fatalf("accepted corrupted distances (mutations %d^%x, %d^%x)", i1, d1, i2, d2)
		}
	})
}

func TestEqual(t *testing.T) {
	if err := Equal([]uint32{1, 2}, []uint32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := Equal([]uint32{1, 2}, []uint32{1, 3}); err == nil {
		t.Fatal("accepted mismatch")
	}
	if err := Equal([]uint32{1}, []uint32{1, 2}); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

// collectEdges extracts the edge list of a CSR graph for the
// Bellman-Ford reference.
func collectEdges(g *graph.Graph) []graph.Edge {
	var edges []graph.Edge
	for u := 0; u < g.NumVertices(); u++ {
		dst, ws := g.OutNeighbors(graph.Vertex(u))
		for i, v := range dst {
			edges = append(edges, graph.Edge{From: graph.Vertex(u), To: v, W: ws[i]})
		}
	}
	return edges
}

// bellmanFordFrom is bellmanFord initialized from a warm seed instead
// of all-Infinity — the independent model of a repair solve.
func bellmanFordFrom(n int, edges []graph.Edge, source graph.Vertex, seed []uint32) []uint32 {
	dist := append([]uint32(nil), seed...)
	dist[source] = 0
	for i := 0; i < n; i++ {
		changed := false
		for _, e := range edges {
			if dist[e.From] != graph.Infinity && dist[e.From]+e.W < dist[e.To] {
				dist[e.To] = dist[e.From] + e.W
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// FuzzCertificateOverlay extends the certificate's soundness claim
// across graph mutation. For fuzz-derived mutation batches applied to
// the base graph, the certificate must accept the mutated snapshot's
// exact distances, reject the pre-mutation distances on the mutated
// graph whenever they differ (and vice versa — the overlay advanced
// the fingerprint for exactly this reason), and the incremental repair
// seed must be a sound upper bound whose seeded relaxation converges
// to exactly the fresh solution.
func FuzzCertificateOverlay(f *testing.F) {
	g, edges, n := fuzzGraph()
	oldRef := bellmanFord(n, edges, 0)

	f.Add(uint64(0), uint8(1))
	f.Add(uint64(7), uint8(4))
	f.Add(uint64(1)<<40, uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, nm uint8) {
		r := seed | 1
		next := func() uint64 {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return r
		}
		var batch []graph.Mutation
		used := map[[2]graph.Vertex]bool{}
		for i := 0; i < 1+int(nm%6); i++ {
			x := next()
			u := graph.Vertex(x % uint64(n))
			v := graph.Vertex((x >> 8) % uint64(n))
			if u == v || used[[2]graph.Vertex{u, v}] {
				continue
			}
			used[[2]graph.Vertex{u, v}] = true
			_, exists := g.FindEdge(u, v)
			switch {
			case !exists:
				batch = append(batch, graph.Mutation{Kind: graph.MutInsert, From: u, To: v, W: 1 + uint32(x>>16)%9})
			case (x>>32)&1 == 0:
				batch = append(batch, graph.Mutation{Kind: graph.MutDelete, From: u, To: v})
			default:
				batch = append(batch, graph.Mutation{Kind: graph.MutSetWeight, From: u, To: v, W: 1 + uint32(x>>16)%9})
			}
		}
		if len(batch) == 0 {
			t.Skip("fuzz words produced no batch")
		}
		ng, delta, err := graph.ApplyMutations(g, batch)
		if err != nil {
			t.Fatalf("ApplyMutations: %v", err)
		}
		newRef := bellmanFord(n, collectEdges(ng), 0)

		if err := Certificate(ng, 0, newRef); err != nil {
			t.Fatalf("rejected the mutated graph's exact distances: %v", err)
		}
		if !slices.Equal(newRef, oldRef) {
			if Certificate(ng, 0, oldRef) == nil {
				t.Fatal("accepted pre-mutation distances on the mutated graph")
			}
			if Certificate(g, 0, newRef) == nil {
				t.Fatal("accepted post-mutation distances on the base graph")
			}
		}

		seedArr, _, err := delta.RepairSeed(0, oldRef)
		if err != nil {
			t.Fatalf("RepairSeed: %v", err)
		}
		if err := UpperBound(ng, 0, seedArr); err != nil {
			t.Fatalf("repair seed is not a sound degraded result on the mutated graph: %v", err)
		}
		for v := 0; v < n; v++ {
			if seedArr[v] != graph.Infinity && seedArr[v] < newRef[v] {
				t.Fatalf("seed[%d] = %d undercuts the true distance %d: repair could never correct it upward", v, seedArr[v], newRef[v])
			}
		}
		repaired := bellmanFordFrom(n, collectEdges(ng), 0, seedArr)
		if !slices.Equal(repaired, newRef) {
			t.Fatal("relaxation from the repair seed did not converge to the fresh solution")
		}
	})
}
