package bundle

import (
	"bytes"
	"testing"

	"wasp/internal/checkpoint"
	"wasp/internal/graph"
)

// FuzzBundleDecode mirrors the checkpoint codec's FuzzDecode for the
// bundle container: an arbitrary byte stream must either decode into a
// bundle that passes full validation or return an error — never panic,
// and never allocate based on unverified header claims. Seeds cover the
// satellite corruption classes: truncations, CRC flips and unknown-flag
// bytes.
func FuzzBundleDecode(f *testing.F) {
	g := graph.FromEdges(3, true, []graph.Edge{
		{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 3},
	})
	b := &Bundle{
		Manifest: Manifest{Name: "fuzz", Version: 7},
		Graph:    g,
		Checkpoints: []*checkpoint.Snapshot{{
			Source:        0,
			GraphVertices: 3,
			GraphEdges:    2,
			Directed:      true,
			Dist:          []uint32{0, 2, graph.Infinity},
		}},
		Relabel: []graph.Vertex{2, 0, 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("WSPB"))
	f.Add(valid[:12])           // header only
	f.Add(valid[:len(valid)/2]) // mid-section truncation
	crcFlip := bytes.Clone(valid)
	crcFlip[len(crcFlip)-1] ^= 0xff // trailing section CRC flipped
	f.Add(crcFlip)
	flagBits := bytes.Clone(valid)
	flagBits[16] ^= 0x02 // first section's flags word: unknown bit
	f.Add(flagBits)
	// Section frame claiming a huge payload with nothing behind it.
	huge := bytes.Clone(valid[:12+16])
	for i := 12 + 8; i < 12+16; i++ {
		huge[i] = 0xfd
	}
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything Read accepts must be internally consistent enough to
		// validate and to re-encode.
		if err := b.Validate(); err != nil {
			t.Fatalf("Read accepted a bundle Validate rejects: %v", err)
		}
		var out bytes.Buffer
		if err := Write(&out, b); err != nil {
			t.Fatalf("re-encode of accepted bundle failed: %v", err)
		}
		if _, err := Read(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded bundle does not decode: %v", err)
		}
	})
}
