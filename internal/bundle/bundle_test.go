package bundle

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"wasp/internal/checkpoint"
	"wasp/internal/graph"
)

// testGraph builds a small directed diamond.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.FromEdges(4, true, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 0, To: 2, W: 4},
		{From: 1, To: 2, W: 1}, {From: 2, To: 3, W: 2},
	})
}

// testBundle assembles a full-featured bundle: graph, manifest, one
// checkpoint and a relabel permutation.
func testBundle(t *testing.T) *Bundle {
	t.Helper()
	g := testGraph(t)
	cp := &checkpoint.Snapshot{
		Source:        0,
		GraphVertices: g.NumVertices(),
		GraphEdges:    g.NumEdges(),
		Directed:      g.Directed(),
		Dist:          []uint32{0, 1, 2, 4},
	}
	return &Bundle{
		Manifest:    Manifest{Name: "diamond", Version: 3, Description: "test"},
		Graph:       g,
		Checkpoints: []*checkpoint.Snapshot{cp},
		Relabel:     []graph.Vertex{0, 1, 2, 3},
	}
}

func encode(t *testing.T, b *Bundle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestRoundTrip: Write∘Read preserves the manifest, graph shape,
// checkpoints and permutation.
func TestRoundTrip(t *testing.T) {
	b := testBundle(t)
	got, err := Read(bytes.NewReader(encode(t, b)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Manifest != b.Manifest {
		t.Fatalf("manifest round-trip: got %+v, want %+v", got.Manifest, b.Manifest)
	}
	if got.Graph.NumVertices() != 4 || got.Graph.NumEdges() != 4 || !got.Graph.Directed() {
		t.Fatalf("graph shape round-trip: %v", got.Graph)
	}
	if len(got.Checkpoints) != 1 || got.Checkpoints[0].Source != 0 ||
		len(got.Checkpoints[0].Dist) != 4 {
		t.Fatalf("checkpoints round-trip: %+v", got.Checkpoints)
	}
	if len(got.Relabel) != 4 {
		t.Fatalf("relabel round-trip: %v", got.Relabel)
	}
	// The graph must be deployable: edges intact.
	dst, w := got.Graph.OutNeighbors(0)
	if len(dst) != 2 || dst[0] != 1 || w[0] != 1 {
		t.Fatalf("graph edges corrupted: %v %v", dst, w)
	}
}

// TestWriteFillsFingerprint: a writer may leave the manifest shape
// fields zero; Write derives them from the graph.
func TestWriteFillsFingerprint(t *testing.T) {
	b := &Bundle{Manifest: Manifest{Name: "g", Version: 1}, Graph: testGraph(t)}
	got, err := Read(bytes.NewReader(encode(t, b)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Manifest.Vertices != 4 || got.Manifest.Edges != 4 || !got.Manifest.Directed {
		t.Fatalf("fingerprint not filled: %+v", got.Manifest)
	}
}

// TestRejectTruncation: every strict prefix of a valid bundle fails
// with a decode error, never a panic or a silent partial bundle.
func TestRejectTruncation(t *testing.T) {
	valid := encode(t, testBundle(t))
	for cut := 0; cut < len(valid); cut += 7 {
		if _, err := Read(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(valid))
		}
	}
}

// TestRejectCorruption: flipping any single byte after the magic is
// caught — by a section CRC, a structural check, or a validation error.
func TestRejectCorruption(t *testing.T) {
	valid := encode(t, testBundle(t))
	for i := 4; i < len(valid); i += 11 {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x40
		if _, err := Read(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
}

// TestRejectWrongFingerprint: a manifest whose shape disagrees with the
// graph section is rejected even when both sections checksum clean.
func TestRejectWrongFingerprint(t *testing.T) {
	b := testBundle(t)
	b.Manifest.Vertices = 5
	var buf bytes.Buffer
	if err := Write(&buf, b); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Write with wrong fingerprint: %v, want ErrInvalid", err)
	}
}

// TestRejectForeignCheckpoint: a checkpoint from another graph cannot
// ride in the bundle.
func TestRejectForeignCheckpoint(t *testing.T) {
	b := testBundle(t)
	b.Checkpoints[0].GraphEdges = 99
	b.Checkpoints[0].Dist = []uint32{0, 1, 2, 4}
	var buf bytes.Buffer
	if err := Write(&buf, b); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Write with foreign checkpoint: %v, want ErrInvalid", err)
	}
}

// TestRejectBadPermutation: non-bijective or wrong-length permutations
// are rejected.
func TestRejectBadPermutation(t *testing.T) {
	for _, perm := range [][]graph.Vertex{
		{0, 1, 2},       // short
		{0, 1, 2, 2},    // duplicate
		{0, 1, 2, 9},    // out of range
		{0, 1, 2, 3, 0}, // long
	} {
		b := testBundle(t)
		b.Checkpoints = nil
		b.Relabel = perm
		var buf bytes.Buffer
		if err := Write(&buf, b); !errors.Is(err, ErrInvalid) {
			t.Fatalf("permutation %v: %v, want ErrInvalid", perm, err)
		}
	}
}

// TestRejectBadWeights: a graph section whose weights reach Infinity is
// structurally invalid — a hand-built WSPG payload must not smuggle the
// "unreachable" sentinel past the loader as an edge weight. The bundle
// is framed by hand (valid CRCs, valid manifest) so that only the
// structural validation layer can object.
func TestRejectBadWeights(t *testing.T) {
	g := graph.FromEdges(2, true, []graph.Edge{{From: 0, To: 1, W: 1}})
	gbad := graph.FromEdges(2, true, []graph.Edge{{From: 0, To: 1, W: 7}})
	var bufGood, bufBad bytes.Buffer
	if err := graph.WriteBinary(&bufGood, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bufBad, gbad); err != nil {
		t.Fatal(err)
	}
	// The two dumps differ only in the weight word's low byte; saturate
	// the whole little-endian word to Infinity (0xffffffff).
	payload := bytes.Clone(bufGood.Bytes())
	j := -1
	for i := range payload {
		if payload[i] != bufBad.Bytes()[i] {
			j = i
			break
		}
	}
	if j < 0 {
		t.Fatal("weight byte not located")
	}
	for k := 0; k < 4; k++ {
		payload[j+k] = 0xff
	}

	manifest := []byte(`{"name":"bad","version":1,"vertices":2,"edges":1,"directed":true}`)
	var data bytes.Buffer
	var hdr [12]byte
	copy(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[8] = 2 // two sections
	data.Write(hdr[:])
	if err := writeSection(&data, secManifest, manifest); err != nil {
		t.Fatal(err)
	}
	if err := writeSection(&data, secGraph, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(data.Bytes())); !errors.Is(err, ErrInvalid) {
		t.Fatalf("saturated weight: %v, want ErrInvalid", err)
	}
}

// TestSaveLoadAtomic: Save publishes a complete file (no temp leftovers
// on success) and Load round-trips it.
func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.wspb")
	b := testBundle(t)
	if err := Save(path, b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Manifest != b.Manifest {
		t.Fatalf("Load manifest = %+v, want %+v", got.Manifest, b.Manifest)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after Save, want 1 (temp leaked?)", len(ents))
	}
}

// TestRejectUnknownSection: an unrecognized section kind fails the
// whole bundle — skipping unvalidated payloads is not an option for a
// format that replaces live serving state.
func TestRejectUnknownSection(t *testing.T) {
	var buf bytes.Buffer
	b := &Bundle{Manifest: Manifest{Name: "g", Version: 1}, Graph: testGraph(t)}
	if err := Write(&buf, b); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bump the section count and append a well-framed section of an
	// unknown kind.
	data[8]++
	var extra bytes.Buffer
	if err := writeSection(&extra, 99, []byte("mystery")); err != nil {
		t.Fatal(err)
	}
	data = append(data, extra.Bytes()...)
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown section: %v, want ErrMalformed", err)
	}
}

// TestRejectSameShapeDifferentWeights is the regression test for the
// content-fingerprint extension: two graphs with identical shape
// (vertices, edges, directedness) but different edge weights must not
// be able to exchange checkpoints or manifests. Shape checks alone
// cannot catch this — it is exactly the stale-result hazard for
// anything keyed by graph identity.
func TestRejectSameShapeDifferentWeights(t *testing.T) {
	mk := func(w graph.Weight) *graph.Graph {
		return graph.FromEdges(4, true, []graph.Edge{
			{From: 0, To: 1, W: w}, {From: 0, To: 2, W: 4 * w},
			{From: 1, To: 2, W: w}, {From: 2, To: 3, W: 2 * w},
		})
	}
	gA, gB := mk(1), mk(3)
	if gA.WeightFingerprint() == gB.WeightFingerprint() {
		t.Fatal("same-shape different-weight graphs share a fingerprint")
	}

	cpOn := func(g *graph.Graph, fp uint64) *checkpoint.Snapshot {
		return &checkpoint.Snapshot{
			Source:        0,
			GraphVertices: g.NumVertices(),
			GraphEdges:    g.NumEdges(),
			Directed:      g.Directed(),
			WeightFP:      fp,
			Dist:          []uint32{0, 1, 2, 4},
		}
	}

	// A fingerprinted checkpoint taken on A rides in A's bundle...
	bA := &Bundle{
		Manifest:    Manifest{Name: "g", Version: 1},
		Graph:       gA,
		Checkpoints: []*checkpoint.Snapshot{cpOn(gA, gA.WeightFingerprint())},
	}
	if err := Write(&bytes.Buffer{}, bA); err != nil {
		t.Fatalf("own-graph checkpoint rejected: %v", err)
	}

	// ...but is rejected when the graph underneath has the same shape
	// and different weights.
	bB := &Bundle{
		Manifest:    Manifest{Name: "g", Version: 2},
		Graph:       gB,
		Checkpoints: []*checkpoint.Snapshot{cpOn(gB, gA.WeightFingerprint())},
	}
	if err := Write(&bytes.Buffer{}, bB); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign-weights checkpoint: %v, want ErrInvalid", err)
	}

	// A manifest fingerprint from the wrong graph is caught the same way.
	bM := &Bundle{
		Manifest: Manifest{Name: "g", Version: 2, WeightFP: gA.WeightFingerprint()},
		Graph:    gB,
	}
	if err := Write(&bytes.Buffer{}, bM); !errors.Is(err, ErrInvalid) {
		t.Fatalf("foreign-weights manifest: %v, want ErrInvalid", err)
	}

	// Legacy artifacts (fingerprint zero, "unknown") keep loading: shape
	// is all they can promise, and shape matches.
	bLegacy := &Bundle{
		Manifest:    Manifest{Name: "g", Version: 2},
		Graph:       gB,
		Checkpoints: []*checkpoint.Snapshot{cpOn(gB, 0)},
	}
	if err := Write(&bytes.Buffer{}, bLegacy); err != nil {
		t.Fatalf("legacy zero-fingerprint checkpoint rejected: %v", err)
	}
}

// TestWriteFillsWeightFP: Write stamps the manifest with the graph's
// content fingerprint so every bundle written today pins its weights.
func TestWriteFillsWeightFP(t *testing.T) {
	b := &Bundle{Manifest: Manifest{Name: "g", Version: 1}, Graph: testGraph(t)}
	got, err := Read(bytes.NewReader(encode(t, b)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Manifest.WeightFP == 0 {
		t.Fatal("manifest WeightFP not filled by Write")
	}
	if got.Manifest.WeightFP != got.Graph.WeightFingerprint() {
		t.Fatalf("manifest WeightFP %016x != graph %016x",
			got.Manifest.WeightFP, got.Graph.WeightFingerprint())
	}
}
