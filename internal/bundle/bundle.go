// Package bundle defines the on-disk unit of graph deployment: one
// file ("WSPB") carrying a named, versioned graph together with its
// optional precomputed artifacts — warm-start checkpoints in the WSCK
// codec and a locality relabeling permutation. A bundle is what a
// registry hot-loads under live traffic, so the format is built to be
// rejected safely: every section is length-framed and CRC-checked
// (mirroring the checkpoint codec), allocation never trusts a header
// beyond the bytes actually present, and Read validates the whole
// artifact set — graph structure, manifest↔graph shape fingerprint,
// checkpoint↔graph fingerprints, permutation bijectivity — before any
// of it is handed to solver workers.
//
// Layout (all integers little-endian):
//
//	[0:4]  magic "WSPB"
//	[4:8]  format version (currently 1)
//	[8:12] section count
//	then count sections, each:
//	  [0:4]    section kind
//	  [4:8]    flags (none defined; nonzero rejected)
//	  [8:16]   payload length L
//	  [16:16+L]      payload
//	  [16+L:20+L]    CRC-32 (IEEE) over kind, flags, length and payload
//
// Section kinds: 1 manifest (canonical JSON), 2 graph (a WSPG binary
// CSR dump), 3 checkpoint (one WSCK stream; repeatable), 4 relabel
// (vertex count + old→new permutation). Exactly one manifest and one
// graph are required, the manifest first — a loader reports the bundle
// identity in every later error. Unknown kinds and unknown flag bits
// are rejected: a bundle is an instruction to replace live serving
// state, so "skip what you don't understand" is the wrong default.
package bundle

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"wasp/internal/checkpoint"
	"wasp/internal/fault"
	"wasp/internal/graph"
)

// Magic identifies a Wasp graph bundle stream.
const Magic = "WSPB"

// Version is the current format version.
const Version = 1

// Section kinds.
const (
	secManifest = 1
	secGraph    = 2
	secCheckpt  = 3
	secRelabel  = 4
)

// maxSections bounds the section count a header may claim; a real
// bundle has one manifest, one graph, one relabeling and a few
// checkpoints.
const maxSections = 4096

// Decode errors. Every decode failure wraps one of these (or an
// underlying I/O error), so a registry can distinguish "not a bundle"
// from "a bundle, but damaged" from "well-formed, but inconsistent".
var (
	ErrBadMagic  = errors.New("bundle: bad magic (not a WSPB stream)")
	ErrVersion   = errors.New("bundle: unsupported format version")
	ErrChecksum  = errors.New("bundle: section checksum mismatch")
	ErrTruncated = errors.New("bundle: truncated stream")
	ErrMalformed = errors.New("bundle: malformed")
	ErrInvalid   = errors.New("bundle: validation failed")
)

// Manifest names and versions the bundle and pins the shape of the
// graph it must contain. Writers may leave the shape fields zero —
// Write fills them from the graph — but on disk they are mandatory:
// Read rejects a bundle whose manifest and graph sections disagree, so
// a manifest spliced onto the wrong graph cannot activate.
type Manifest struct {
	// Name is the graph's registry key. Required, and stable across
	// versions of the same logical graph.
	Name string `json:"name"`
	// Version distinguishes successive bundles of the same graph. A
	// registry treats an equal version as "already loaded" and anything
	// else as a new deployment, so producers should increment it.
	Version uint64 `json:"version"`
	// Description is free-form provenance (generator, date, tuning
	// notes). Optional.
	Description string `json:"description,omitempty"`

	// Shape fingerprint of the graph section.
	Vertices int64 `json:"vertices"`
	Edges    int64 `json:"edges"`
	Directed bool  `json:"directed"`

	// WeightFP is the graph section's content fingerprint
	// (graph.WeightFingerprint: wiring + weights). Shape alone cannot
	// distinguish two versions that differ only in edge weights — the
	// stale-read hazard once fingerprints key result caches and
	// warm-start artifacts. Zero ("unknown") is accepted on decode so
	// legacy bundles keep loading; Write always fills it.
	WeightFP uint64 `json:"weight_fp,omitempty"`
}

// Bundle is a decoded (or to-be-encoded) graph deployment.
type Bundle struct {
	Manifest Manifest
	// Graph is the deployable graph. When Relabel is present the graph
	// is stored in relabeled (locality-optimized) id space.
	Graph *graph.Graph
	// Checkpoints are optional warm-start seeds, each fingerprint-bound
	// to Graph. With Relabel present their sources and distance arrays
	// are in relabeled id space, like the graph they were solved on.
	Checkpoints []*checkpoint.Snapshot
	// Relabel, when non-empty, is the old→new vertex permutation that
	// produced Graph from the original id space (see
	// graph.RelabelByDegree). A serving layer maps query sources
	// through it and result arrays back through ApplyPermutation.
	Relabel []graph.Vertex
}

// Validate checks the cross-section consistency of a decoded (or
// hand-assembled) bundle: manifest identity, graph structure, and every
// artifact's binding to the graph. Read calls it on every successful
// decode; registries call it again on hand-assembled bundles.
func (b *Bundle) Validate() error {
	if err := validateName(b.Manifest.Name); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	if b.Graph == nil {
		return fmt.Errorf("%w: bundle %q has no graph", ErrInvalid, b.Manifest.Name)
	}
	if err := graph.Validate(b.Graph); err != nil {
		return fmt.Errorf("%w: bundle %q: %w", ErrInvalid, b.Manifest.Name, err)
	}
	n, m, dir := b.Graph.NumVertices(), b.Graph.NumEdges(), b.Graph.Directed()
	if b.Manifest.Vertices != int64(n) || b.Manifest.Edges != m || b.Manifest.Directed != dir {
		return fmt.Errorf("%w: bundle %q: manifest fingerprint (%d vertices, %d edges, directed=%v) does not match graph (%d, %d, %v)",
			ErrInvalid, b.Manifest.Name, b.Manifest.Vertices, b.Manifest.Edges, b.Manifest.Directed, n, m, dir)
	}
	// Content check beyond shape: a manifest (or checkpoint) carrying a
	// nonzero fingerprint must match this graph's actual wiring+weights;
	// zero means "legacy, shape-checked only" and passes.
	fp := b.Graph.WeightFingerprint()
	if b.Manifest.WeightFP != 0 && b.Manifest.WeightFP != fp {
		return fmt.Errorf("%w: bundle %q: manifest content fingerprint %016x does not match graph %016x (same shape, different wiring or weights)",
			ErrInvalid, b.Manifest.Name, b.Manifest.WeightFP, fp)
	}
	for i, cp := range b.Checkpoints {
		if err := cp.Matches(n, m, dir); err != nil {
			return fmt.Errorf("%w: bundle %q: checkpoint %d: %w", ErrInvalid, b.Manifest.Name, i, err)
		}
		if err := cp.MatchesWeights(fp); err != nil {
			return fmt.Errorf("%w: bundle %q: checkpoint %d: %w", ErrInvalid, b.Manifest.Name, i, err)
		}
	}
	if len(b.Relabel) > 0 {
		if err := validatePermutation(b.Relabel, n); err != nil {
			return fmt.Errorf("%w: bundle %q: %w", ErrInvalid, b.Manifest.Name, err)
		}
	}
	return nil
}

// validatePermutation checks that perm is a bijection on [0, n).
func validatePermutation(perm []graph.Vertex, n int) error {
	if len(perm) != n {
		return fmt.Errorf("relabel permutation has %d entries for %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for i, v := range perm {
		if int(v) >= n {
			return fmt.Errorf("relabel permutation entry %d maps to %d, out of range for %d vertices", i, v, n)
		}
		if seen[v] {
			return fmt.Errorf("relabel permutation is not a bijection: %d mapped to twice", v)
		}
		seen[v] = true
	}
	return nil
}

// validateName restricts graph names to a charset that is safe to use
// as a path component (checkpoint files are keyed by graph name), a
// Prometheus label value, and a URL query value without escaping.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("manifest has no graph name")
	}
	if len(name) > 128 {
		return fmt.Errorf("graph name %q exceeds 128 bytes", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("graph name %q: character %q not in [a-zA-Z0-9._-]", name, c)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("graph name %q is a path traversal", name)
	}
	return nil
}

// Normalize fills the manifest's shape fingerprint from the graph when
// all three fields are zero — the convenience for bundles assembled in
// memory — and the content fingerprint whenever it is unset. A
// partially-set or disagreeing fingerprint is left alone for Validate
// to reject.
func (b *Bundle) Normalize() {
	if b.Graph == nil {
		return
	}
	if b.Manifest.Vertices == 0 && b.Manifest.Edges == 0 && !b.Manifest.Directed {
		b.Manifest.Vertices = int64(b.Graph.NumVertices())
		b.Manifest.Edges = b.Graph.NumEdges()
		b.Manifest.Directed = b.Graph.Directed()
	}
	if b.Manifest.WeightFP == 0 {
		b.Manifest.WeightFP = b.Graph.WeightFingerprint()
	}
}

// Write encodes the bundle to w. The manifest's shape fields are
// filled from the graph when zero; the assembled bundle is validated
// before a byte is written, so Write never produces a bundle Read would
// reject.
func Write(w io.Writer, b *Bundle) error {
	b.Normalize()
	if err := b.Validate(); err != nil {
		return err
	}

	var hdr [12]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	nSections := 2 + len(b.Checkpoints)
	if len(b.Relabel) > 0 {
		nSections++
	}
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(nSections))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}

	manifest, err := json.Marshal(&b.Manifest)
	if err != nil {
		return fmt.Errorf("bundle: encoding manifest: %w", err)
	}
	if err := writeSection(w, secManifest, manifest); err != nil {
		return err
	}

	var gbuf bytes.Buffer
	if err := graph.WriteBinary(&gbuf, b.Graph); err != nil {
		return fmt.Errorf("bundle: encoding graph: %w", err)
	}
	if err := writeSection(w, secGraph, gbuf.Bytes()); err != nil {
		return err
	}

	if len(b.Relabel) > 0 {
		rbuf := make([]byte, 8+4*len(b.Relabel))
		binary.LittleEndian.PutUint64(rbuf[0:8], uint64(len(b.Relabel)))
		for i, v := range b.Relabel {
			binary.LittleEndian.PutUint32(rbuf[8+4*i:], uint32(v))
		}
		if err := writeSection(w, secRelabel, rbuf); err != nil {
			return err
		}
	}

	for i, cp := range b.Checkpoints {
		var cbuf bytes.Buffer
		if err := cp.Encode(&cbuf); err != nil {
			return fmt.Errorf("bundle: encoding checkpoint %d: %w", i, err)
		}
		if err := writeSection(w, secCheckpt, cbuf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// writeSection frames one section: kind, flags, length, payload, CRC
// over all of the preceding (magic-independent) bytes.
func writeSection(w io.Writer, kind uint32, payload []byte) error {
	var frame [16]byte
	binary.LittleEndian.PutUint32(frame[0:4], kind)
	binary.LittleEndian.PutUint32(frame[4:8], 0) // flags
	binary.LittleEndian.PutUint64(frame[8:16], uint64(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(frame[:])
	crc.Write(payload)
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// sectionReadChunk bounds how much of a section payload is read (and
// allocated) at once, so a lying length field on a truncated file fails
// with ErrTruncated instead of attempting a giant allocation.
const sectionReadChunk = 1 << 20

// readSection reads one framed section, verifying its CRC before the
// payload is interpreted.
func readSection(r io.Reader) (kind uint32, payload []byte, err error) {
	var frame [16]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section frame: %v", ErrTruncated, err)
	}
	kind = binary.LittleEndian.Uint32(frame[0:4])
	if flags := binary.LittleEndian.Uint32(frame[4:8]); flags != 0 {
		return 0, nil, fmt.Errorf("%w: section kind %d has unknown flag bits %#x", ErrMalformed, kind, flags)
	}
	length := binary.LittleEndian.Uint64(frame[8:16])
	crc := crc32.NewIEEE()
	crc.Write(frame[:])
	payload = []byte{}
	for remaining := length; remaining > 0; {
		chunk := remaining
		if chunk > sectionReadChunk {
			chunk = sectionReadChunk
		}
		start := len(payload)
		payload = append(payload, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, fmt.Errorf("%w: section kind %d payload: %v", ErrTruncated, kind, err)
		}
		remaining -= chunk
	}
	crc.Write(payload)
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section kind %d trailer: %v", ErrTruncated, kind, err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		return 0, nil, fmt.Errorf("%w: section kind %d: computed %08x, stored %08x", ErrChecksum, kind, got, want)
	}
	return kind, payload, nil
}

// Read decodes one bundle from r and validates it end to end. A nil
// error means the bundle is deployable: CRCs verified, graph
// structurally sound, every artifact fingerprint-bound to the graph.
func Read(r io.Reader) (*Bundle, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("%w: %d (decoder speaks %d)", ErrVersion, v, Version)
	}
	nSections := binary.LittleEndian.Uint32(hdr[8:12])
	if nSections < 2 || nSections > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrMalformed, nSections)
	}

	b := &Bundle{}
	haveManifest, haveGraph := false, false
	for i := 0; i < int(nSections); i++ {
		fault.Inject(fault.BundleSection, i)
		kind, payload, err := readSection(r)
		if err != nil {
			return nil, err
		}
		switch kind {
		case secManifest:
			if haveManifest {
				return nil, fmt.Errorf("%w: duplicate manifest section", ErrMalformed)
			}
			dec := json.NewDecoder(bytes.NewReader(payload))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&b.Manifest); err != nil {
				return nil, fmt.Errorf("%w: manifest: %v", ErrMalformed, err)
			}
			haveManifest = true
		case secGraph:
			if haveGraph {
				return nil, fmt.Errorf("%w: duplicate graph section", ErrMalformed)
			}
			if !haveManifest {
				return nil, fmt.Errorf("%w: graph section before manifest", ErrMalformed)
			}
			g, err := decodeGraphSection(payload)
			if err != nil {
				return nil, err
			}
			b.Graph = g
			haveGraph = true
		case secCheckpt:
			cp, err := checkpoint.Decode(bytes.NewReader(payload))
			if err != nil {
				return nil, fmt.Errorf("%w: checkpoint section: %v", ErrMalformed, err)
			}
			b.Checkpoints = append(b.Checkpoints, cp)
		case secRelabel:
			if len(b.Relabel) > 0 {
				return nil, fmt.Errorf("%w: duplicate relabel section", ErrMalformed)
			}
			perm, err := decodeRelabelSection(payload)
			if err != nil {
				return nil, err
			}
			b.Relabel = perm
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrMalformed, kind)
		}
	}
	if !haveManifest || !haveGraph {
		return nil, fmt.Errorf("%w: bundle needs a manifest and a graph section", ErrMalformed)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeGraphSection parses a WSPG dump whose exact byte length is
// known from the section frame. The WSPG header's counts are
// cross-checked against that length before the CSR arrays are
// allocated, so a corrupted count cannot demand memory the payload does
// not contain.
func decodeGraphSection(payload []byte) (*graph.Graph, error) {
	const wspgHeader = 4 + 4*8 // magic + version, flags, n, m
	if len(payload) < wspgHeader {
		return nil, fmt.Errorf("%w: graph section too short (%d bytes)", ErrMalformed, len(payload))
	}
	n := binary.LittleEndian.Uint64(payload[20:28])
	m := binary.LittleEndian.Uint64(payload[28:36])
	directed := binary.LittleEndian.Uint64(payload[12:20])&1 != 0
	if n > 1<<31 {
		return nil, fmt.Errorf("%w: graph section claims %d vertices", ErrMalformed, n)
	}
	csr := (n+1)*8 + m*4 + m*4 // offsets + endpoints + weights
	want := uint64(wspgHeader) + csr
	if directed {
		want += csr
	}
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: graph section is %d bytes, header claims %d vertices / %d edges (%d bytes)",
			ErrMalformed, len(payload), n, m, want)
	}
	g, err := graph.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: graph section: %v", ErrMalformed, err)
	}
	return g, nil
}

// decodeRelabelSection parses a relabel permutation payload.
func decodeRelabelSection(payload []byte) ([]graph.Vertex, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: relabel section too short", ErrMalformed)
	}
	count := binary.LittleEndian.Uint64(payload[0:8])
	if uint64(len(payload)) != 8+4*count {
		return nil, fmt.Errorf("%w: relabel section is %d bytes for %d entries", ErrMalformed, len(payload), count)
	}
	perm := make([]graph.Vertex, count)
	for i := range perm {
		perm[i] = graph.Vertex(binary.LittleEndian.Uint32(payload[8+4*i:]))
	}
	return perm, nil
}
