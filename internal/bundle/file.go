package bundle

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"wasp/internal/fault"
)

// Save writes the bundle to path crash-safely, mirroring
// checkpoint.Save: encode into a temporary file in the same directory,
// fsync, rename over the destination, fsync the directory. A registry
// rescanning the directory therefore only ever sees complete bundles —
// either the previous one or the new one, never a torn write.
func Save(path string, b *Bundle) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriterSize(tmp, 1<<16)
	if err = Write(w, b); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the bundle at path.
func Load(path string) (*Bundle, error) {
	// The scanner-facing fault site: an active plan may fail the load
	// before the file is opened, the way a flaky filesystem fails a
	// rescan — the input the per-file quarantine backoff is tested
	// against.
	if err := fault.InjectErr(fault.BundleLoad, 0); err != nil {
		return nil, fmt.Errorf("bundle: load %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: load: %w", err)
	}
	defer f.Close()
	b, err := Read(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("bundle: load %s: %w", path, err)
	}
	return b, nil
}
