// Package checkpoint defines the on-disk format for Wasp solve
// snapshots: a versioned, checksummed binary codec ("WSCK") plus
// crash-safe save/load helpers. A snapshot is a monotone upper-bound
// distance state captured mid-solve (see core.Solver.Checkpoint); the
// codec's job is to make that state survive a process kill and to
// refuse, loudly, anything that is not a snapshot it wrote.
//
// Layout (all integers little-endian):
//
//	[0:4]    magic "WSCK"
//	[4:8]    format version (currently 1)
//	[8:12]   flags (bit 0: graph is directed)
//	[12:16]  source vertex
//	[16:24]  graph vertex count
//	[24:32]  graph edge count
//	[32:40]  elapsed solve time, nanoseconds
//	[40:48]  relaxations attempted
//	[48:56]  distance entry count n (must equal the vertex count)
//	[56:64]  graph content fingerprint (present only when flag bit 1 set)
//	then the distance array (4n bytes) followed by a CRC-32 (IEEE)
//	trailer over every byte after the magic.
//
// The content fingerprint (graph.WeightFingerprint: wiring + weights,
// not just shape) was added behind flag bit 1 so legacy streams — and
// new streams of snapshots whose producer did not know the graph —
// decode unchanged with WeightFP 0, meaning "unknown, shape-checked
// only".
//
// The checksum covers everything after the magic, so a flipped bit in
// header, payload or trailer is detected; the magic itself gates the
// "is this even ours" check with a clearer error than a checksum
// mismatch.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"wasp/internal/graph"
)

// Magic identifies a Wasp checkpoint stream.
const Magic = "WSCK"

// Version is the current format version. Decoders reject anything
// newer; older versions would be migrated here if the format evolves.
const Version = 1

const headerSize = 56

// Header flag bits.
const (
	// flagDirected (bit 0): the graph is directed.
	flagDirected = 1 << 0
	// flagWeightFP (bit 1): an 8-byte graph content fingerprint follows
	// the fixed header. Absent on legacy streams (WeightFP 0 on decode).
	flagWeightFP = 1 << 1
)

// Decode errors. All decode failures wrap one of these (or an
// underlying I/O error), so callers can distinguish "not a checkpoint"
// from "a checkpoint, but damaged".
var (
	ErrBadMagic  = errors.New("checkpoint: bad magic (not a WSCK stream)")
	ErrVersion   = errors.New("checkpoint: unsupported format version")
	ErrChecksum  = errors.New("checkpoint: checksum mismatch")
	ErrTruncated = errors.New("checkpoint: truncated stream")
	ErrMalformed = errors.New("checkpoint: malformed header")
)

// Snapshot is a decoded (or to-be-encoded) solve checkpoint: the
// upper-bound distance array plus the identity of the solve it belongs
// to. GraphVertices/GraphEdges/Directed fingerprint the graph so a
// resume against the wrong input fails fast instead of converging to
// garbage (the warm-start contract requires the same graph).
type Snapshot struct {
	Source        uint32
	GraphVertices int
	GraphEdges    int64
	Directed      bool
	// WeightFP is the content fingerprint of the graph the snapshot was
	// taken on (graph.WeightFingerprint: wiring + weights). Zero means
	// "unknown" — legacy snapshots and hand-assembled ones fingerprint
	// by shape only. When nonzero it distinguishes two same-shape graphs
	// that differ only in edge weights, the case the shape triple above
	// cannot catch; see MatchesWeights.
	WeightFP uint64
	// Elapsed is the solve wall time already spent when the snapshot
	// was captured; a resumed solve adds to it rather than restarting
	// the clock.
	Elapsed time.Duration
	// Relaxations attempted up to the capture (approximate: workers
	// publish at chunk granularity).
	Relaxations int64
	// Dist is the upper-bound distance array, one entry per vertex.
	Dist []uint32
}

// Settled counts the finite entries of Dist — the vertices the
// captured solve had already reached.
func (s *Snapshot) Settled() int {
	n := 0
	for _, d := range s.Dist {
		if d != graph.Infinity {
			n++
		}
	}
	return n
}

// Matches verifies the snapshot belongs to a graph with the given
// shape, returning a descriptive error when it does not.
func (s *Snapshot) Matches(numVertices int, numEdges int64, directed bool) error {
	switch {
	case s.GraphVertices != numVertices:
		return fmt.Errorf("checkpoint: graph has %d vertices, snapshot was taken on %d",
			numVertices, s.GraphVertices)
	case s.GraphEdges != numEdges:
		return fmt.Errorf("checkpoint: graph has %d edges, snapshot was taken on %d",
			numEdges, s.GraphEdges)
	case s.Directed != directed:
		return fmt.Errorf("checkpoint: graph directedness %v, snapshot was taken on %v",
			directed, s.Directed)
	case len(s.Dist) != numVertices:
		return fmt.Errorf("checkpoint: snapshot has %d distance entries for %d vertices",
			len(s.Dist), numVertices)
	}
	if int(s.Source) >= numVertices {
		return fmt.Errorf("checkpoint: source %d out of range for %d vertices",
			s.Source, numVertices)
	}
	return nil
}

// MatchesWeights verifies the snapshot's graph content fingerprint
// against fp (graph.WeightFingerprint of the graph being resumed on).
// A zero on either side means "unknown" and passes — legacy snapshots
// stay loadable — so this is a complement to Matches, not a substitute:
// shape is always checked, content only when both sides know it. The
// check it adds is exactly the stale-read hazard shape cannot see: two
// versions of a graph differing only in edge weights.
func (s *Snapshot) MatchesWeights(fp uint64) error {
	if s.WeightFP != 0 && fp != 0 && s.WeightFP != fp {
		return fmt.Errorf("checkpoint: graph content fingerprint %016x, snapshot was taken on %016x (same shape, different wiring or weights)",
			fp, s.WeightFP)
	}
	return nil
}

// encodeChunk is the staging-buffer size for streaming the distance
// payload: bounded memory regardless of graph size.
const encodeChunk = 1 << 14 // entries per write (64 KiB)

// Encode writes the snapshot to w in WSCK format.
func (s *Snapshot) Encode(w io.Writer) error {
	if len(s.Dist) != s.GraphVertices {
		return fmt.Errorf("checkpoint: %d distance entries for %d vertices", len(s.Dist), s.GraphVertices)
	}
	var hdr [headerSize + 8]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	var flags uint32
	if s.Directed {
		flags |= flagDirected
	}
	// The fingerprint extension is emitted only when known, so a
	// WeightFP-less snapshot encodes byte-identically to the legacy
	// format (the golden-format pin holds).
	hdrLen := headerSize
	if s.WeightFP != 0 {
		flags |= flagWeightFP
		binary.LittleEndian.PutUint64(hdr[56:64], s.WeightFP)
		hdrLen += 8
	}
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	binary.LittleEndian.PutUint32(hdr[12:16], s.Source)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(s.GraphVertices))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(s.GraphEdges))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(s.Elapsed.Nanoseconds()))
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(s.Relaxations))
	binary.LittleEndian.PutUint64(hdr[48:56], uint64(len(s.Dist)))

	crc := crc32.NewIEEE()
	crc.Write(hdr[4:hdrLen])
	if _, err := w.Write(hdr[:hdrLen]); err != nil {
		return err
	}

	buf := make([]byte, 4*encodeChunk)
	for off := 0; off < len(s.Dist); off += encodeChunk {
		end := off + encodeChunk
		if end > len(s.Dist) {
			end = len(s.Dist)
		}
		b := buf[:4*(end-off)]
		for i, d := range s.Dist[off:end] {
			binary.LittleEndian.PutUint32(b[4*i:], d)
		}
		crc.Write(b)
		if _, err := w.Write(b); err != nil {
			return err
		}
	}

	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// Decode reads one WSCK snapshot from r. It never trusts the header's
// sizes for allocation: the distance payload is read in bounded chunks
// and grown as bytes actually arrive, so a lying header on a truncated
// file fails with ErrTruncated instead of attempting a giant
// allocation.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		return nil, fmt.Errorf("%w: %d (decoder speaks %d)", ErrVersion, v, Version)
	}
	flags := binary.LittleEndian.Uint32(hdr[8:12])
	if flags&^uint32(flagDirected|flagWeightFP) != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrMalformed, flags)
	}
	nVerts := binary.LittleEndian.Uint64(hdr[16:24])
	nEdges := binary.LittleEndian.Uint64(hdr[24:32])
	distLen := binary.LittleEndian.Uint64(hdr[48:56])
	if distLen != nVerts {
		return nil, fmt.Errorf("%w: %d distance entries for %d vertices", ErrMalformed, distLen, nVerts)
	}
	if nVerts > uint64(graph.Infinity) || nEdges > 1<<62 {
		return nil, fmt.Errorf("%w: implausible graph shape (%d vertices, %d edges)",
			ErrMalformed, nVerts, nEdges)
	}

	crc := crc32.NewIEEE()
	crc.Write(hdr[4:])

	var weightFP uint64
	if flags&flagWeightFP != 0 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return nil, fmt.Errorf("%w: fingerprint extension: %v", ErrTruncated, err)
		}
		crc.Write(ext[:])
		weightFP = binary.LittleEndian.Uint64(ext[:])
		if weightFP == 0 {
			return nil, fmt.Errorf("%w: fingerprint flag set with zero fingerprint", ErrMalformed)
		}
	}

	const maxChunk = 1 << 20 // entries per read: bounds allocation growth
	dist := []uint32{}
	buf := make([]byte, 0)
	for remaining := distLen; remaining > 0; {
		chunk := remaining
		if chunk > maxChunk {
			chunk = maxChunk
		}
		if uint64(cap(buf)) < 4*chunk {
			buf = make([]byte, 4*chunk)
		}
		b := buf[:4*chunk]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: distance payload: %v", ErrTruncated, err)
		}
		crc.Write(b)
		for i := uint64(0); i < chunk; i++ {
			dist = append(dist, binary.LittleEndian.Uint32(b[4*i:]))
		}
		remaining -= chunk
	}

	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: trailer: %v", ErrTruncated, err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer[:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, stored %08x", ErrChecksum, got, want)
	}

	return &Snapshot{
		Source:        binary.LittleEndian.Uint32(hdr[12:16]),
		GraphVertices: int(nVerts),
		GraphEdges:    int64(nEdges),
		Directed:      flags&flagDirected != 0,
		WeightFP:      weightFP,
		Elapsed:       time.Duration(binary.LittleEndian.Uint64(hdr[32:40])),
		Relaxations:   int64(binary.LittleEndian.Uint64(hdr[40:48])),
		Dist:          dist,
	}, nil
}
