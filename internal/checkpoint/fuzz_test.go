package checkpoint

import (
	"bytes"
	"testing"

	"wasp/internal/graph"
)

// FuzzDecode: an arbitrary byte stream must either decode into a
// self-consistent snapshot or return an error — never panic, and never
// allocate based on unverified header claims. Valid inputs must
// re-encode to the identical bytes (the codec is canonical).
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	s := &Snapshot{
		Source:        1,
		GraphVertices: 3,
		GraphEdges:    2,
		Directed:      true,
		Relaxations:   9,
		Dist:          []uint32{0, 5, graph.Infinity},
	}
	if err := s.Encode(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("WSCK"))
	f.Add(valid[:headerSize])
	// Header claiming a huge payload with nothing behind it.
	huge := bytes.Clone(valid[:headerSize])
	for i := 16; i < 24; i++ {
		huge[i] = 0xfe
	}
	copy(huge[48:56], huge[16:24])
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(s.Dist) != s.GraphVertices {
			t.Fatalf("decoded %d dist entries for %d vertices", len(s.Dist), s.GraphVertices)
		}
		var out bytes.Buffer
		if err := s.Encode(&out); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		// Canonical: decode∘encode is the identity on the consumed
		// prefix (the stream may have trailing bytes Decode ignored).
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("re-encoded bytes differ from the decoded input")
		}
	})
}
