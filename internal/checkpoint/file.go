package checkpoint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"wasp/internal/fault"
)

// Save writes the snapshot to path crash-safely: encode into a
// temporary file in the same directory, fsync it, rename over the
// destination, fsync the directory. A reader (or a restarted process)
// therefore sees either the previous complete checkpoint or the new
// complete checkpoint — never a torn one — and a power cut after Save
// returns cannot lose the rename.
func Save(path string, s *Snapshot) (err error) {
	// The chaos suite's disk-fault site: an active plan may stall here
	// (congested disk) or hand back a transient error or ENOSPC before
	// any byte is written — the same failures a real filesystem
	// produces, seeded and reproducible.
	if err := fault.InjectErr(fault.DiskWrite, 0); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriterSize(tmp, 1<<16)
	if err = s.Encode(w); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort on
	// filesystems that do not support it; the rename is still atomic.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the snapshot at path.
func Load(path string) (*Snapshot, error) {
	if err := fault.InjectErr(fault.DiskRead, 0); err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load: %w", err)
	}
	defer f.Close()
	s, err := Decode(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: load %s: %w", path, err)
	}
	return s, nil
}
