package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wasp/internal/graph"
)

func sample() *Snapshot {
	return &Snapshot{
		Source:        3,
		GraphVertices: 5,
		GraphEdges:    7,
		Directed:      true,
		Elapsed:       1500 * time.Millisecond,
		Relaxations:   42,
		Dist:          []uint32{10, 20, graph.Infinity, 0, 30},
	}
}

func encode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	got, err := Decode(bytes.NewReader(encode(t, want)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Source != want.Source || got.GraphVertices != want.GraphVertices ||
		got.GraphEdges != want.GraphEdges || got.Directed != want.Directed ||
		got.Elapsed != want.Elapsed || got.Relaxations != want.Relaxations {
		t.Fatalf("metadata mismatch: got %+v want %+v", got, want)
	}
	if len(got.Dist) != len(want.Dist) {
		t.Fatalf("Dist length %d, want %d", len(got.Dist), len(want.Dist))
	}
	for i := range want.Dist {
		if got.Dist[i] != want.Dist[i] {
			t.Fatalf("Dist[%d] = %d, want %d", i, got.Dist[i], want.Dist[i])
		}
	}
	if got.Settled() != 4 {
		t.Fatalf("Settled = %d, want 4", got.Settled())
	}
}

func TestRoundTripLarge(t *testing.T) {
	// Crosses both the encode (2^14) and decode (2^20) chunk
	// boundaries so the streaming paths are exercised, not just the
	// single-chunk fast case.
	n := 1<<20 + 1<<14 + 17
	s := &Snapshot{GraphVertices: n, GraphEdges: 0, Dist: make([]uint32, n)}
	for i := range s.Dist {
		s.Dist[i] = uint32(i * 2654435761)
	}
	got, err := Decode(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i := range s.Dist {
		if got.Dist[i] != s.Dist[i] {
			t.Fatalf("Dist[%d] = %d, want %d", i, got.Dist[i], s.Dist[i])
		}
	}
}

// TestGoldenFormat pins the on-disk byte layout. If this test breaks,
// the format changed: bump Version and add a migration, do not just
// update the hex.
func TestGoldenFormat(t *testing.T) {
	got := hex.EncodeToString(encode(t, sample()))
	want := "5753434b" + // "WSCK"
		"01000000" + // version 1
		"01000000" + // flags: directed
		"03000000" + // source 3
		"0500000000000000" + // 5 vertices
		"0700000000000000" + // 7 edges
		"002f685900000000" + // 1.5s in ns
		"2a00000000000000" + // 42 relaxations
		"0500000000000000" + // 5 dist entries
		"0a000000" + "14000000" + "ffffffff" + "00000000" + "1e000000" +
		"564cbc49" // crc32 IEEE over bytes [4:76)
	if got != want {
		t.Fatalf("encoding changed:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encode(t, sample())

	t.Run("bad magic", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[0] = 'X'
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[4] = 99
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[58] ^= 0x40
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped header byte", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[12] ^= 0x01 // source
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("flipped trailer byte", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[len(b)-1] ^= 0x80
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("truncation at every length", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := Decode(bytes.NewReader(valid[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("dist length disagrees with vertex count", func(t *testing.T) {
		b := bytes.Clone(valid)
		b[48] = 4 // distLen: 5 → 4
		if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed", err)
		}
	})
	t.Run("absurd header sizes do not over-allocate", func(t *testing.T) {
		b := bytes.Clone(valid[:headerSize])
		for _, off := range []int{16, 48} { // vertex count and distLen
			for i := 0; i < 8; i++ {
				b[off+i] = 0xff
			}
		}
		// Claims ~2^64 entries with zero payload behind it: must fail
		// fast (malformed or truncated), never attempt the allocation.
		_, err := Decode(bytes.NewReader(b))
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrMalformed or ErrTruncated", err)
		}
	})
}

func TestEncodeRejectsInconsistentSnapshot(t *testing.T) {
	s := sample()
	s.GraphVertices = 99
	if err := s.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("Encode accepted len(Dist) != GraphVertices")
	}
}

func TestMatches(t *testing.T) {
	s := sample()
	if err := s.Matches(5, 7, true); err != nil {
		t.Fatalf("Matches on identical shape: %v", err)
	}
	for name, check := range map[string]error{
		"vertices": s.Matches(6, 7, true),
		"edges":    s.Matches(5, 8, true),
		"directed": s.Matches(5, 7, false),
	} {
		if check == nil {
			t.Errorf("Matches ignored a %s mismatch", name)
		}
	}
	bad := sample()
	bad.Source = 5
	if bad.Matches(5, 7, true) == nil {
		t.Error("Matches accepted out-of-range source")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.wsck")
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Source != want.Source || len(got.Dist) != len(want.Dist) {
		t.Fatalf("Load returned %+v, want %+v", got, want)
	}

	// Overwrite is atomic: a second Save replaces the first cleanly and
	// leaves no temp files behind.
	want.Relaxations = 1000
	if err := Save(path, want); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatalf("Load after overwrite: %v", err)
	}
	if got.Relaxations != 1000 {
		t.Fatalf("Relaxations = %d, want 1000", got.Relaxations)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wsck")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.wsck")); err == nil {
		t.Fatal("Load invented a missing file")
	}
}

func TestWeightFPRoundTrip(t *testing.T) {
	legacyLen := len(encode(t, sample()))
	want := sample()
	want.WeightFP = 0xdeadbeefcafef00d
	b := encode(t, want)
	if len(b) != legacyLen+8 {
		t.Fatalf("fingerprinted stream is %d bytes, want legacy %d + 8", len(b), legacyLen)
	}
	got, err := Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.WeightFP != want.WeightFP {
		t.Fatalf("WeightFP = %016x, want %016x", got.WeightFP, want.WeightFP)
	}
	if got.Source != want.Source || got.Directed != want.Directed ||
		got.Elapsed != want.Elapsed || len(got.Dist) != len(want.Dist) {
		t.Fatalf("metadata mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Dist {
		if got.Dist[i] != want.Dist[i] {
			t.Fatalf("Dist[%d] = %d, want %d", i, got.Dist[i], want.Dist[i])
		}
	}

	// The extension is covered by the checksum and the truncation guard
	// like every other byte.
	t.Run("truncation at every length", func(t *testing.T) {
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(bytes.NewReader(b[:cut])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
			}
		}
	})
	t.Run("flipped fingerprint byte", func(t *testing.T) {
		c := bytes.Clone(b)
		c[headerSize+3] ^= 0x10
		if _, err := Decode(bytes.NewReader(c)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("err = %v, want ErrChecksum", err)
		}
	})
}

func TestWeightFPLegacyDecodesToZero(t *testing.T) {
	// A snapshot that does not know its graph encodes byte-identically
	// to the legacy format (TestGoldenFormat pins the bytes) and decodes
	// with WeightFP 0 — "unknown, shape-checked only".
	got, err := Decode(bytes.NewReader(encode(t, sample())))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.WeightFP != 0 {
		t.Fatalf("WeightFP = %016x, want 0 on a legacy stream", got.WeightFP)
	}
}

func TestWeightFPFlagWithZeroFingerprintRejected(t *testing.T) {
	s := sample()
	s.WeightFP = 0xdeadbeefcafef00d
	b := encode(t, s)
	// Zero the extension and rewrite the trailer so only the semantic
	// check — flag set but fingerprint zero — can fire, not the CRC.
	for i := headerSize; i < headerSize+8; i++ {
		b[i] = 0
	}
	crc := crc32.ChecksumIEEE(b[4 : len(b)-4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
	if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestMatchesWeights(t *testing.T) {
	s := sample()
	if err := s.MatchesWeights(0); err != nil {
		t.Fatalf("unknown vs unknown: %v", err)
	}
	if err := s.MatchesWeights(42); err != nil {
		t.Fatalf("unknown snapshot vs known graph: %v", err)
	}
	s.WeightFP = 42
	if err := s.MatchesWeights(0); err != nil {
		t.Fatalf("known snapshot vs unknown graph: %v", err)
	}
	if err := s.MatchesWeights(42); err != nil {
		t.Fatalf("identical fingerprints: %v", err)
	}
	if err := s.MatchesWeights(43); err == nil {
		t.Fatal("MatchesWeights accepted differing fingerprints")
	}
}
