// Package barrier provides the reusable synchronization barrier used by
// the synchronous Δ-stepping baselines (GAP, GBBS, Δ*-/ρ-stepping). It
// is a sense-reversing barrier over an atomic counter with a channel
// fallback for long waits, and it records per-worker wait time: the
// paper's Figure 1 reports exactly this barrier overhead for the GAP
// implementation across the graph suite.
package barrier

import (
	"sync"
	"sync/atomic"
	"time"
)

// Barrier is a reusable barrier for a fixed number of parties.
type Barrier struct {
	parties int
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	phase   uint64

	waitNS []atomic.Int64 // per-party cumulative wait, nanoseconds
}

// New returns a Barrier for n parties.
func New(n int) *Barrier {
	b := &Barrier{parties: n, waitNS: make([]atomic.Int64, n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks party id until all parties have called Wait, then releases
// them all. The time spent blocked is accumulated per party.
func (b *Barrier) Wait(id int) {
	start := time.Now()
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
	b.waitNS[id].Add(int64(time.Since(start)))
}

// WaitTime returns party id's cumulative time blocked in Wait.
func (b *Barrier) WaitTime(id int) time.Duration {
	return time.Duration(b.waitNS[id].Load())
}

// TotalWaitTime sums the wait time across all parties.
func (b *Barrier) TotalWaitTime() time.Duration {
	var total int64
	for i := range b.waitNS {
		total += b.waitNS[i].Load()
	}
	return time.Duration(total)
}

// ResetStats zeroes the accumulated wait times.
func (b *Barrier) ResetStats() {
	for i := range b.waitNS {
		b.waitNS[i].Store(0)
	}
}
