// Package barrier provides the reusable synchronization barrier used by
// the synchronous Δ-stepping baselines (GAP, GBBS, Δ*-/ρ-stepping). It
// is a sense-reversing barrier over an atomic counter with a channel
// fallback for long waits, and it records per-worker wait time: the
// paper's Figure 1 reports exactly this barrier overhead for the GAP
// implementation across the graph suite.
package barrier

import (
	"sync"
	"sync/atomic"
	"time"
)

// Barrier is a reusable barrier for a fixed number of parties.
type Barrier struct {
	parties int
	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	phase   uint64
	broken  bool

	waitNS []atomic.Int64 // per-party cumulative wait, nanoseconds
}

// New returns a Barrier for n parties.
func New(n int) *Barrier {
	b := &Barrier{parties: n, waitNS: make([]atomic.Int64, n)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks party id until all parties have called Wait, then releases
// them all. The time spent blocked is accumulated per party. On a
// broken barrier Wait returns immediately (see Break).
func (b *Barrier) Wait(id int) {
	start := time.Now()
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		b.waitNS[id].Add(int64(time.Since(start)))
		return
	}
	phase := b.phase
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	} else {
		for b.phase == phase && !b.broken {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
	b.waitNS[id].Add(int64(time.Since(start)))
}

// Break permanently breaks the barrier: every current waiter is
// released and every future Wait returns immediately. A party that
// panics between two barriers would otherwise strand its siblings in
// Wait forever — panic-containment paths call Break before unwinding
// so the survivors can observe Broken and drain.
func (b *Barrier) Break() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Broken reports whether the barrier has been broken. After a Wait
// that returned because of Break, callers must not touch step-shared
// state (the phase protocol no longer orders accesses) — check Broken
// first and bail out.
func (b *Barrier) Broken() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}

// WaitTime returns party id's cumulative time blocked in Wait.
func (b *Barrier) WaitTime(id int) time.Duration {
	return time.Duration(b.waitNS[id].Load())
}

// TotalWaitTime sums the wait time across all parties.
func (b *Barrier) TotalWaitTime() time.Duration {
	var total int64
	for i := range b.waitNS {
		total += b.waitNS[i].Load()
	}
	return time.Duration(total)
}

// ResetStats zeroes the accumulated wait times.
func (b *Barrier) ResetStats() {
	for i := range b.waitNS {
		b.waitNS[i].Store(0)
	}
}
