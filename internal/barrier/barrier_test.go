package barrier

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wasp/internal/parallel"
)

func TestBarrierSynchronizes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const parties = 4
	const rounds = 200
	b := New(parties)
	var phase atomic.Int64
	fail := atomic.Bool{}
	parallel.Run(parties, nil, func(id int) {
		for r := 0; r < rounds; r++ {
			// Everyone must observe the same round number here.
			if int(phase.Load()) != r {
				fail.Store(true)
			}
			b.Wait(id)
			if id == 0 {
				phase.Add(1)
			}
			b.Wait(id)
		}
	})
	if fail.Load() {
		t.Fatal("a party ran ahead of the barrier")
	}
	if got := phase.Load(); got != rounds {
		t.Fatalf("phases = %d, want %d", got, rounds)
	}
}

func TestWaitTimeAccumulates(t *testing.T) {
	b := New(2)
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Wait(1)
	}()
	b.Wait(0) // blocks ~20ms
	if b.WaitTime(0) < 10*time.Millisecond {
		t.Fatalf("party 0 wait = %v, expected >= 10ms", b.WaitTime(0))
	}
	if b.TotalWaitTime() < b.WaitTime(0) {
		t.Fatal("total < single party")
	}
	b.ResetStats()
	if b.TotalWaitTime() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestSinglePartyNeverBlocks(t *testing.T) {
	b := New(1)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.Wait(0)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-party barrier deadlocked")
	}
}
