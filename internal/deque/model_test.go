package deque

import (
	"testing"
	"testing/quick"

	"wasp/internal/chunk"
	"wasp/internal/rng"
)

// TestModelEquivalence: single-threaded, the deque must behave exactly
// like a double-ended queue model — PushBottom/PopBottom as a stack at
// one end, Steal as a queue at the other.
func TestModelEquivalence(t *testing.T) {
	f := func(seed uint64, opsRaw uint16) bool {
		d := New(8)
		var model []*chunk.Chunk
		r := rng.NewXoshiro256(seed)
		ops := int(opsRaw % 2000)
		for i := 0; i < ops; i++ {
			switch r.IntN(3) {
			case 0: // push
				c := &chunk.Chunk{Prio: uint64(i)}
				d.PushBottom(c)
				model = append(model, c)
			case 1: // pop bottom
				got := d.PopBottom()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if got != want {
					return false
				}
			case 2: // steal from top
				got := d.Steal()
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			}
			if d.Len() != len(model) {
				return false
			}
			if d.Empty() != (len(model) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
