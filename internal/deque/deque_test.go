package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"wasp/internal/chunk"
)

func mkChunks(n int) []*chunk.Chunk {
	out := make([]*chunk.Chunk, n)
	for i := range out {
		out[i] = &chunk.Chunk{Prio: uint64(i)}
	}
	return out
}

func TestOwnerLIFO(t *testing.T) {
	d := New(4)
	cs := mkChunks(10)
	for _, c := range cs {
		d.PushBottom(c)
	}
	if d.Len() != 10 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 9; i >= 0; i-- {
		c := d.PopBottom()
		if c != cs[i] {
			t.Fatalf("pop %d: got %v", i, c)
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("pop from empty should be nil")
	}
	if !d.Empty() {
		t.Fatal("should be empty")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New(4)
	cs := mkChunks(10)
	for _, c := range cs {
		d.PushBottom(c)
	}
	for i := 0; i < 10; i++ {
		c := d.Steal()
		if c != cs[i] {
			t.Fatalf("steal %d: got %v, want %v", i, c, cs[i])
		}
	}
	if d.Steal() != nil {
		t.Fatal("steal from empty should be nil")
	}
}

func TestGrowthPreservesContents(t *testing.T) {
	d := New(8)
	cs := mkChunks(1000) // forces several growths
	for _, c := range cs {
		d.PushBottom(c)
	}
	for i := 0; i < 500; i++ {
		if got := d.Steal(); got != cs[i] {
			t.Fatalf("steal %d wrong after growth", i)
		}
	}
	for i := 999; i >= 500; i-- {
		if got := d.PopBottom(); got != cs[i] {
			t.Fatalf("pop %d wrong after growth", i)
		}
	}
}

func TestInterleavedOwnerOps(t *testing.T) {
	d := New(8)
	a, b, c := &chunk.Chunk{}, &chunk.Chunk{}, &chunk.Chunk{}
	d.PushBottom(a)
	d.PushBottom(b)
	if d.PopBottom() != b {
		t.Fatal("pop b")
	}
	d.PushBottom(c)
	if d.Steal() != a {
		t.Fatal("steal a")
	}
	if d.PopBottom() != c {
		t.Fatal("pop c")
	}
	if !d.Empty() {
		t.Fatal("not empty")
	}
}

// TestStressOwnerVsThieves: every pushed chunk is received exactly once,
// across one owner (push/pop) and many concurrent thieves.
func TestStressOwnerVsThieves(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // force scheduling interleavings even on 1 core
	defer runtime.GOMAXPROCS(prev)

	const total = 50000
	const thieves = 4
	d := New(8)

	var got [total]atomic.Int32
	var stolen, popped atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := d.Steal()
				if c != nil {
					got[c.Prio].Add(1)
					stolen.Add(1)
					continue
				}
				select {
				case <-done:
					// Drain anything left after the owner finished.
					for {
						c := d.Steal()
						if c == nil {
							return
						}
						got[c.Prio].Add(1)
						stolen.Add(1)
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}

	// Owner: pushes all chunks, occasionally popping some back.
	for i := 0; i < total; i++ {
		d.PushBottom(&chunk.Chunk{Prio: uint64(i)})
		if i%3 == 0 {
			if c := d.PopBottom(); c != nil {
				got[c.Prio].Add(1)
				popped.Add(1)
			}
		}
	}
	for {
		c := d.PopBottom()
		if c == nil {
			break
		}
		got[c.Prio].Add(1)
		popped.Add(1)
	}
	close(done)
	wg.Wait()
	// Final drain by owner in case thieves exited first.
	for {
		c := d.Steal()
		if c == nil {
			break
		}
		got[c.Prio].Add(1)
	}

	for i := 0; i < total; i++ {
		if n := got[i].Load(); n != 1 {
			t.Fatalf("chunk %d received %d times (stolen=%d popped=%d)",
				i, n, stolen.Load(), popped.Load())
		}
	}
}

// TestStressSingleElementRaces hammers the owner-vs-thief race on the
// last element.
func TestStressSingleElementRaces(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	d := New(8)
	const rounds = 20000
	var received atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if c := d.Steal(); c != nil {
				received.Add(1)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		d.PushBottom(&chunk.Chunk{})
		if c := d.PopBottom(); c != nil {
			received.Add(1)
		}
	}
	close(done)
	wg.Wait()
	for {
		c := d.Steal()
		if c == nil {
			break
		}
		received.Add(1)
	}
	if received.Load() != rounds {
		t.Fatalf("received %d of %d chunks", received.Load(), rounds)
	}
}

func TestNewCapacityRounding(t *testing.T) {
	for _, c := range []int{0, 1, 8, 9, 100} {
		d := New(c)
		if d == nil || !d.Empty() {
			t.Fatalf("New(%d) broken", c)
		}
	}
}

func BenchmarkPushPopBottom(b *testing.B) {
	d := New(64)
	c := &chunk.Chunk{}
	for i := 0; i < b.N; i++ {
		d.PushBottom(c)
		d.PopBottom()
	}
}

func BenchmarkSteal(b *testing.B) {
	d := New(b.N + 1)
	c := &chunk.Chunk{}
	for i := 0; i < b.N; i++ {
		d.PushBottom(c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}
