// Package deque implements the dynamic circular work-stealing deque of
// Chase and Lev (SPAA 2005), specialized to *chunk.Chunk elements. It is
// the "current bucket" of the Wasp algorithm (paper §4.3): the owner
// worker pushes and pops chunks at the bottom; thief workers steal
// chunks from the top with a CAS. The deque is lock-free; contention
// between the owner and thieves arises only when a single element
// remains and is resolved by CAS on the top index.
//
// Growth is triggered only by the owner pushing into a full ring and
// does not invalidate concurrent steals: the old ring stays readable
// (growth copies, never clears) and the top/bottom indices are
// monotonic unbounded 64-bit counters, as in the paper's description.
//
// Go's sync/atomic operations are sequentially consistent, so the
// memory-fence subtleties of the original weak-memory formulation do
// not arise.
package deque

import (
	"sync/atomic"

	"wasp/internal/chunk"
)

// ring is a power-of-two circular array of chunk pointers.
type ring struct {
	mask int64
	buf  []atomic.Pointer[chunk.Chunk]
}

func newRing(capacity int64) *ring {
	return &ring{mask: capacity - 1, buf: make([]atomic.Pointer[chunk.Chunk], capacity)}
}

func (r *ring) get(i int64) *chunk.Chunk    { return r.buf[i&r.mask].Load() }
func (r *ring) put(i int64, c *chunk.Chunk) { r.buf[i&r.mask].Store(c) }
func (r *ring) grow(bottom, top int64) *ring {
	next := newRing((r.mask + 1) * 2)
	for i := top; i != bottom; i++ {
		next.put(i, r.get(i))
	}
	return next
}

// Deque is a single-owner, multi-thief chunk deque.
// The zero value is not usable; call New.
type Deque struct {
	top    atomic.Int64 // next index thieves steal from
	_      [56]byte     // keep top and bottom on separate cache lines
	bottom atomic.Int64 // next index the owner pushes to
	_      [56]byte
	array  atomic.Pointer[ring]
}

// New returns an empty deque with the given initial capacity, rounded up
// to a power of two (minimum 8).
func New(capacity int) *Deque {
	c := int64(8)
	for int(c) < capacity {
		c *= 2
	}
	d := &Deque{}
	d.array.Store(newRing(c))
	return d
}

// Empty reports whether the deque appears empty. Concurrent operations
// may change the answer immediately; callers treat it as a hint except
// during termination detection, where the stability argument in
// internal/core/term.go makes the read exact.
func (d *Deque) Empty() bool {
	b := d.bottom.Load()
	t := d.top.Load()
	return b <= t
}

// Len returns the apparent number of elements.
func (d *Deque) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return 0
	}
	return int(b - t)
}

// PushBottom appends c at the bottom. Owner-only.
func (d *Deque) PushBottom(c *chunk.Chunk) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.array.Load()
	if b-t > a.mask { // full
		a = a.grow(b, t)
		d.array.Store(a)
	}
	a.put(b, c)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the most recently pushed chunk.
// Owner-only. Returns nil if the deque is empty or the last element was
// lost to a concurrent thief.
func (d *Deque) PopBottom() *chunk.Chunk {
	b := d.bottom.Load() - 1
	a := d.array.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if b < t { // was empty: undo
		d.bottom.Store(b + 1)
		return nil
	}
	c := a.get(b)
	if b != t {
		return c // more than one element: no race possible
	}
	// Single element left: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return nil
	}
	return c
}

// Steal removes and returns the oldest chunk (top end). Thief-safe:
// any worker other than the owner may call it concurrently. Returns nil
// when the deque is empty or the steal lost a race.
func (d *Deque) Steal() *chunk.Chunk {
	t := d.top.Load()
	b := d.bottom.Load()
	if b <= t {
		return nil
	}
	a := d.array.Load()
	c := a.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return c
}
