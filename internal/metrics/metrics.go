// Package metrics collects the per-worker execution counters behind the
// paper's analysis figures: edge-relaxation counts (Figure 8's priority
// drift analysis), steal-protocol statistics (§4.2), barrier wait time
// (Figure 1), and queue-operation time (Figure 2). Counters are plain
// per-worker fields — no atomics on the hot path — padded to cache
// lines and summed once after a run.
package metrics

import "time"

// MaxStealTiers bounds the per-tier steal breakdown: Wasp's NUMA
// hierarchies expose at most three victim tiers (same node, same
// socket, remote — numa.Topology.Tiers).
const MaxStealTiers = 3

// Worker holds one worker's counters. Workers update their own struct
// without synchronization; aggregation happens after all workers join.
type Worker struct {
	Relaxations    int64 // edge relaxations attempted (paper Fig 8 counts these)
	Improvements   int64 // relaxations that lowered a distance
	StaleSkips     int64 // vertices skipped by the staleness check (Alg 1 line 20)
	StealAttempts  int64 // victims inspected
	StealHits      int64 // chunks successfully stolen
	StealRounds    int64 // work_stealing() invocations
	ChunksDrained  int64 // chunks fully processed
	BucketAdvances int64 // moves to a new local priority level
	QueueOpNS      int64 // time inside shared-queue operations (Fig 2)
	BarrierNS      int64 // time blocked at barriers (Fig 1)
	StealNS        int64 // time inside steal rounds (Wasp breakdown)
	IdleNS         int64 // time idling at priority ∞ (Wasp breakdown)

	// TierHits breaks StealHits down by the proximity rank of the tier
	// the chunks came from: index 0 is the thief's nearest non-empty
	// tier (same NUMA node on a full hierarchy), 2 the furthest. The
	// paper's §4.2 locality argument is exactly that index 0 should
	// dominate. Filled by PolicyWasp only — the random policies have no
	// tier structure.
	TierHits [MaxStealTiers]int64

	_ [32]byte // pad to reduce false sharing between adjacent workers
}

// AddQueueOp accrues shared-queue time.
func (w *Worker) AddQueueOp(d time.Duration) { w.QueueOpNS += int64(d) }

// Set is a fixed collection of per-worker metrics.
type Set struct {
	Workers []Worker
}

// NewSet returns metrics storage for p workers.
func NewSet(p int) *Set { return &Set{Workers: make([]Worker, p)} }

// Reset zeroes every worker's counters so the set can be reused across
// runs without reallocating. Callers must ensure no worker is
// concurrently updating its counters (i.e. between runs).
func (s *Set) Reset() {
	for i := range s.Workers {
		s.Workers[i] = Worker{}
	}
}

// Totals sums all workers' counters into a single Worker value.
func (s *Set) Totals() Worker {
	var t Worker
	for i := range s.Workers {
		w := &s.Workers[i]
		t.Relaxations += w.Relaxations
		t.Improvements += w.Improvements
		t.StaleSkips += w.StaleSkips
		t.StealAttempts += w.StealAttempts
		t.StealHits += w.StealHits
		t.StealRounds += w.StealRounds
		t.ChunksDrained += w.ChunksDrained
		t.BucketAdvances += w.BucketAdvances
		t.QueueOpNS += w.QueueOpNS
		t.BarrierNS += w.BarrierNS
		t.StealNS += w.StealNS
		t.IdleNS += w.IdleNS
		for i := range w.TierHits {
			t.TierHits[i] += w.TierHits[i]
		}
	}
	return t
}

// PerWorker returns a copy of every worker's counters — the breakdown
// Totals flattens. Callers get owned storage: reading it is safe while
// the set is later reset or reused (but not while workers are
// concurrently updating, same as Totals).
func (s *Set) PerWorker() []Worker {
	out := make([]Worker, len(s.Workers))
	copy(out, s.Workers)
	return out
}

// QueueOpTime returns the summed shared-queue time.
func (s *Set) QueueOpTime() time.Duration {
	return time.Duration(s.Totals().QueueOpNS)
}

// BarrierTime returns the summed barrier wait time.
func (s *Set) BarrierTime() time.Duration {
	return time.Duration(s.Totals().BarrierNS)
}
