package metrics

import (
	"testing"
	"time"
)

func TestTotals(t *testing.T) {
	s := NewSet(3)
	s.Workers[0].Relaxations = 10
	s.Workers[1].Relaxations = 20
	s.Workers[2].Relaxations = 30
	s.Workers[0].StealHits = 1
	s.Workers[2].BarrierNS = int64(2 * time.Millisecond)
	s.Workers[1].AddQueueOp(3 * time.Millisecond)

	tot := s.Totals()
	if tot.Relaxations != 60 {
		t.Fatalf("relaxations = %d", tot.Relaxations)
	}
	if tot.StealHits != 1 {
		t.Fatalf("steal hits = %d", tot.StealHits)
	}
	if s.BarrierTime() != 2*time.Millisecond {
		t.Fatalf("barrier time = %v", s.BarrierTime())
	}
	if s.QueueOpTime() != 3*time.Millisecond {
		t.Fatalf("queue time = %v", s.QueueOpTime())
	}
}

func TestAllFieldsAggregated(t *testing.T) {
	s := NewSet(2)
	w := &s.Workers[0]
	w.Relaxations = 1
	w.Improvements = 2
	w.StaleSkips = 3
	w.StealAttempts = 4
	w.StealHits = 5
	w.StealRounds = 6
	w.ChunksDrained = 7
	w.BucketAdvances = 8
	w.QueueOpNS = 9
	w.BarrierNS = 10
	tot := s.Totals()
	if tot.Relaxations != 1 || tot.Improvements != 2 || tot.StaleSkips != 3 ||
		tot.StealAttempts != 4 || tot.StealHits != 5 || tot.StealRounds != 6 ||
		tot.ChunksDrained != 7 || tot.BucketAdvances != 8 ||
		tot.QueueOpNS != 9 || tot.BarrierNS != 10 {
		t.Fatalf("totals dropped a field: %+v", tot)
	}
}

// TestSetReset: Reset zeroes every counter of every worker so a session
// can reuse one Set across solves.
func TestSetReset(t *testing.T) {
	s := NewSet(2)
	s.Workers[0].Relaxations = 5
	s.Workers[0].StealHits = 2
	s.Workers[1].IdleNS = 99
	s.Workers[1].AddQueueOp(3 * time.Millisecond)
	s.Reset()
	tot := s.Totals()
	if tot != (Worker{}) {
		t.Fatalf("counters survive Reset: %+v", tot)
	}
}
