package metrics

import (
	"testing"
	"time"
)

func TestTotals(t *testing.T) {
	s := NewSet(3)
	s.Workers[0].Relaxations = 10
	s.Workers[1].Relaxations = 20
	s.Workers[2].Relaxations = 30
	s.Workers[0].StealHits = 1
	s.Workers[2].BarrierNS = int64(2 * time.Millisecond)
	s.Workers[1].AddQueueOp(3 * time.Millisecond)

	tot := s.Totals()
	if tot.Relaxations != 60 {
		t.Fatalf("relaxations = %d", tot.Relaxations)
	}
	if tot.StealHits != 1 {
		t.Fatalf("steal hits = %d", tot.StealHits)
	}
	if s.BarrierTime() != 2*time.Millisecond {
		t.Fatalf("barrier time = %v", s.BarrierTime())
	}
	if s.QueueOpTime() != 3*time.Millisecond {
		t.Fatalf("queue time = %v", s.QueueOpTime())
	}
}

func TestAllFieldsAggregated(t *testing.T) {
	s := NewSet(2)
	w := &s.Workers[0]
	w.Relaxations = 1
	w.Improvements = 2
	w.StaleSkips = 3
	w.StealAttempts = 4
	w.StealHits = 5
	w.StealRounds = 6
	w.ChunksDrained = 7
	w.BucketAdvances = 8
	w.QueueOpNS = 9
	w.BarrierNS = 10
	tot := s.Totals()
	if tot.Relaxations != 1 || tot.Improvements != 2 || tot.StaleSkips != 3 ||
		tot.StealAttempts != 4 || tot.StealHits != 5 || tot.StealRounds != 6 ||
		tot.ChunksDrained != 7 || tot.BucketAdvances != 8 ||
		tot.QueueOpNS != 9 || tot.BarrierNS != 10 {
		t.Fatalf("totals dropped a field: %+v", tot)
	}
}

// TestSetReset: Reset zeroes every counter of every worker so a session
// can reuse one Set across solves.
func TestSetReset(t *testing.T) {
	s := NewSet(2)
	s.Workers[0].Relaxations = 5
	s.Workers[0].StealHits = 2
	s.Workers[1].IdleNS = 99
	s.Workers[1].AddQueueOp(3 * time.Millisecond)
	s.Reset()
	tot := s.Totals()
	if tot != (Worker{}) {
		t.Fatalf("counters survive Reset: %+v", tot)
	}
}

// TestPerWorkerSumsToTotals: the per-worker breakdown must be lossless —
// summing every counter of every PerWorker entry reproduces Totals
// exactly, including the per-tier steal split.
func TestPerWorkerSumsToTotals(t *testing.T) {
	s := NewSet(3)
	for i := range s.Workers {
		w := &s.Workers[i]
		base := int64(i + 1)
		w.Relaxations = 10 * base
		w.Improvements = 20 * base
		w.StaleSkips = 30 * base
		w.StealAttempts = 40 * base
		w.StealHits = 50 * base
		w.StealRounds = 60 * base
		w.ChunksDrained = 70 * base
		w.BucketAdvances = 80 * base
		w.QueueOpNS = 90 * base
		w.BarrierNS = 100 * base
		w.StealNS = 110 * base
		w.IdleNS = 120 * base
		for ti := range w.TierHits {
			w.TierHits[ti] = base * int64(ti+1)
		}
	}

	per := s.PerWorker()
	if len(per) != 3 {
		t.Fatalf("PerWorker returned %d entries, want 3", len(per))
	}
	var sum Worker
	for _, w := range per {
		sum.Relaxations += w.Relaxations
		sum.Improvements += w.Improvements
		sum.StaleSkips += w.StaleSkips
		sum.StealAttempts += w.StealAttempts
		sum.StealHits += w.StealHits
		sum.StealRounds += w.StealRounds
		sum.ChunksDrained += w.ChunksDrained
		sum.BucketAdvances += w.BucketAdvances
		sum.QueueOpNS += w.QueueOpNS
		sum.BarrierNS += w.BarrierNS
		sum.StealNS += w.StealNS
		sum.IdleNS += w.IdleNS
		for ti := range w.TierHits {
			sum.TierHits[ti] += w.TierHits[ti]
		}
	}
	if sum != s.Totals() {
		t.Fatalf("per-worker sum != totals:\nsum    %+v\ntotals %+v", sum, s.Totals())
	}

	// PerWorker hands back owned storage: mutating it must not leak
	// into the live set.
	per[0].Relaxations = -1
	if s.Workers[0].Relaxations == -1 {
		t.Fatal("PerWorker aliases live set storage")
	}
}

// TestTierHitsAggregated: Totals must not drop the tier breakdown.
func TestTierHitsAggregated(t *testing.T) {
	s := NewSet(2)
	s.Workers[0].TierHits = [MaxStealTiers]int64{1, 2, 3}
	s.Workers[1].TierHits = [MaxStealTiers]int64{10, 20, 30}
	tot := s.Totals()
	if tot.TierHits != ([MaxStealTiers]int64{11, 22, 33}) {
		t.Fatalf("tier totals = %v", tot.TierHits)
	}
	s.Reset()
	if s.Totals().TierHits != ([MaxStealTiers]int64{}) {
		t.Fatal("tier counters survive Reset")
	}
}
