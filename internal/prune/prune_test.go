package prune

import (
	"testing"

	"wasp/internal/baseline/dijkstra"
	"wasp/internal/gen"
	"wasp/internal/graph"
	"wasp/internal/verify"
)

func TestPendantChainStripped(t *testing.T) {
	// Core triangle {0,1,2} with a pendant chain 2-3-4-5.
	g := graph.FromEdges(6, false, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}, {From: 2, To: 0, W: 1},
		{From: 2, To: 3, W: 2}, {From: 3, To: 4, W: 3}, {From: 4, To: 5, W: 4},
	})
	p := Prepare(g)
	if p.Stripped() != 3 {
		t.Fatalf("stripped %d vertices, want 3 (the chain)", p.Stripped())
	}
	for _, v := range []int{3, 4, 5} {
		if !p.IsPruned.Get(v) {
			t.Fatalf("vertex %d not pruned", v)
		}
	}
	if p.IsPruned.Get(0) || p.IsPruned.Get(2) {
		t.Fatal("core vertex pruned")
	}
	// Solve on the core, restore, compare with a full solve.
	dist := dijkstra.Distances(p.Core, 0)
	p.Restore(dist)
	want := dijkstra.Distances(g, 0)
	if err := verify.Equal(dist, want); err != nil {
		t.Fatal(err)
	}
}

func TestWholeTreeGraph(t *testing.T) {
	// A pure tree: everything except (at most) the last core remnant
	// is pendant. Distances must still restore exactly.
	g := graph.FromEdges(7, false, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 0, To: 2, W: 2},
		{From: 1, To: 3, W: 3}, {From: 1, To: 4, W: 4},
		{From: 2, To: 5, W: 5}, {From: 2, To: 6, W: 6},
	})
	p := Prepare(g)
	if p.Stripped() < 5 {
		t.Fatalf("stripped only %d of a 7-vertex tree", p.Stripped())
	}
	src := graph.Vertex(0)
	if !p.SourceUsable(src) {
		// The strip order may have consumed vertex 0 too; fall back.
		t.Skip("root pruned in this strip order")
	}
	dist := dijkstra.Distances(p.Core, src)
	p.Restore(dist)
	if err := verify.Equal(dist, dijkstra.Distances(g, src)); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedGraphUntouched(t *testing.T) {
	g := graph.FromEdges(3, true, []graph.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}})
	p := Prepare(g)
	if p.Stripped() != 0 || p.Core != g {
		t.Fatal("directed graph should not be pruned")
	}
}

func TestNoPendantsNoCopy(t *testing.T) {
	// A cycle has no degree-1 vertices: Prepare must return g itself.
	g := graph.FromEdges(4, false, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1}, {From: 3, To: 0, W: 1},
	})
	p := Prepare(g)
	if p.Stripped() != 0 || p.Core != g {
		t.Fatal("cycle should be returned unchanged")
	}
}

func TestMawiMassivePruning(t *testing.T) {
	// The star graph's whole point: the hub's degree-1 spokes are
	// pendant, so pruning must remove the overwhelming majority.
	g, _ := gen.Generate("mawi", gen.Config{N: 10000, Seed: 3})
	p := Prepare(g)
	if p.Stripped() < g.NumVertices()/2 {
		t.Fatalf("stripped only %d of %d star vertices", p.Stripped(), g.NumVertices())
	}
	src := graph.SourceInLargestComponent(g, 1)
	if !p.SourceUsable(src) {
		t.Skip("picked a pruned source")
	}
	dist := dijkstra.Distances(p.Core, src)
	p.Restore(dist)
	if err := verify.Equal(dist, dijkstra.Distances(g, src)); err != nil {
		t.Fatal(err)
	}
}

func TestAllWorkloadsRoundTrip(t *testing.T) {
	for _, name := range []string{"road-usa", "kmer", "kron", "urand", "delaunay"} {
		g, _ := gen.Generate(name, gen.Config{N: 3000, Seed: 17})
		p := Prepare(g)
		src := graph.SourceInLargestComponent(g, 1)
		if !p.SourceUsable(src) {
			continue
		}
		dist := dijkstra.Distances(p.Core, src)
		p.Restore(dist)
		if err := verify.Equal(dist, dijkstra.Distances(g, src)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDisconnectedPendants(t *testing.T) {
	// Pendant pair component {3,4} far from the source: must stay
	// unreachable after restore.
	g := graph.FromEdges(5, false, []graph.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}, {From: 2, To: 0, W: 1},
		{From: 3, To: 4, W: 9},
	})
	p := Prepare(g)
	dist := dijkstra.Distances(p.Core, 0)
	p.Restore(dist)
	if dist[3] != graph.Infinity || dist[4] != graph.Infinity {
		t.Fatalf("unreachable pendants got distances: %v", dist)
	}
}
