// Package prune implements graph-aware tree pruning for SSSP, the
// preprocessing the Wasp paper's §4.4 points to as future work (its
// reference [21], D'Antonio et al., "Relax and Don't Stop: Graph-aware
// Asynchronous SSSP", FCPC 2025): pendant trees — maximal subtrees
// hanging off the graph by a single vertex — can never carry a shortest
// path between core vertices, so they are stripped before the solve and
// their distances reconstructed afterwards by a single downward sweep.
//
// This generalizes the paper's leaf-pruning optimization (which handles
// only depth-1 leaves, at scheduling time) to arbitrary-depth pendant
// trees, at preprocessing time, and works with every SSSP
// implementation because it wraps the solve instead of hooking its
// scheduler.
//
// Only undirected graphs are pruned: on directed graphs a pendant
// structure must be pendant in both directions, which the simple degree
// rule does not capture, so Prepare returns the identity mapping.
package prune

import (
	sdist "wasp/internal/dist"
	"wasp/internal/graph"
)

// strippedEdge records how a pruned vertex hangs off the remainder.
type strippedEdge struct {
	v      graph.Vertex // the pruned vertex
	parent graph.Vertex // its unique remaining neighbor at prune time
	w      graph.Weight
}

// Pruned is the preprocessing result: the core graph plus the recipe
// for reconstructing pruned distances.
type Pruned struct {
	// Core is the graph with pendant trees removed. Vertex ids are
	// preserved (pruned vertices become isolated), so sources and
	// distance arrays keep their meaning.
	Core *graph.Graph
	// order holds the strip sequence; reconstruction replays it
	// backwards so parents are final before their children.
	order []strippedEdge
	// IsPruned marks vertices that were stripped.
	IsPruned *graph.Bitmap
}

// Stripped returns the number of pruned vertices.
func (p *Pruned) Stripped() int { return len(p.order) }

// Prepare strips pendant trees from g. For directed graphs it returns
// a no-op Pruned (Core == g).
func Prepare(g *graph.Graph) *Pruned {
	n := g.NumVertices()
	p := &Pruned{Core: g, IsPruned: graph.NewBitmap(n)}
	if g.Directed() {
		return p
	}

	// Iteratively strip degree-1 vertices. deg tracks remaining
	// degrees; a worklist carries vertices whose degree fell to 1.
	deg := make([]int32, n)
	var queue []graph.Vertex
	for v := 0; v < n; v++ {
		deg[v] = int32(g.OutDegree(graph.Vertex(v)))
		if deg[v] == 1 {
			queue = append(queue, graph.Vertex(v))
		}
	}
	pruned := make([]bool, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if pruned[v] || deg[v] != 1 {
			continue
		}
		// Find the unique unpruned neighbor.
		dst, wts := g.OutNeighbors(v)
		var parent graph.Vertex
		var w graph.Weight
		found := false
		for i, t := range dst {
			if !pruned[t] {
				parent, w, found = t, wts[i], true
				break
			}
		}
		if !found {
			continue // isolated pair already handled from the other side
		}
		pruned[v] = true
		p.IsPruned.Set(int(v))
		p.order = append(p.order, strippedEdge{v: v, parent: parent, w: w})
		deg[parent]--
		if deg[parent] == 1 {
			queue = append(queue, parent)
		}
	}
	if len(p.order) == 0 {
		return p
	}

	// Build the core graph without edges incident to pruned vertices.
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		if pruned[v] {
			continue
		}
		dst, wts := g.OutNeighbors(graph.Vertex(v))
		for i, t := range dst {
			if !pruned[t] && graph.Vertex(v) < t {
				b.AddEdge(graph.Vertex(v), t, wts[i])
			}
		}
	}
	p.Core = b.Build()
	return p
}

// Restore fills the distances of pruned vertices into dist (computed on
// Core from a source that must itself be unpruned) by replaying the
// strip order backwards: each vertex's distance is its parent's final
// distance plus the pendant edge weight.
func (p *Pruned) Restore(dist []uint32) {
	for i := len(p.order) - 1; i >= 0; i-- {
		e := p.order[i]
		if dp := dist[e.parent]; dp != graph.Infinity {
			nd := sdist.SatAdd(dp, e.w)
			if nd < dist[e.v] {
				dist[e.v] = nd
			}
		}
	}
}

// SourceUsable reports whether src survives pruning (a pruned source
// would see an empty core component; callers should pick a core source
// or skip pruning).
func (p *Pruned) SourceUsable(src graph.Vertex) bool {
	return !p.IsPruned.Get(int(src))
}
