package wasp

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CacheOptions configures a Cache. The zero value caches up to 256 MiB
// of distance arrays with nearest-source warm starts enabled.
type CacheOptions struct {
	// MaxBytes is the memory budget for cached distance arrays
	// (default 256 MiB). The least-recently-used entry is evicted when
	// an insert would exceed it; a single result larger than the whole
	// budget is served but never stored.
	MaxBytes int64
	// DisableWarm turns off nearest-source warm seeding: misses always
	// solve cold. Exact-hit serving and singleflight are unaffected.
	DisableWarm bool
}

// defaultCacheBytes is CacheOptions.MaxBytes when unset.
const defaultCacheBytes = 256 << 20

// Cache is a pool-level result-reuse layer: completed distance arrays
// are retained as compact in-memory WSCK checkpoints (the
// internal/checkpoint snapshot form — ~4 bytes per vertex) keyed by
// (scope, graph content fingerprint, source) with LRU eviction under
// MaxBytes. One Cache may serve many pools — and, through
// RegistryOptions.Cache, every versioned pool of a Registry.
//
// Three mechanisms stack, cheapest first:
//
//   - Exact hit: a query whose (graph, source) pair was already solved
//     returns a detached copy of the cached distances without touching
//     a session — no admission ticket, no solver work, microseconds.
//   - Singleflight: concurrent identical queries coalesce onto one
//     in-flight solve; followers wait and share the leader's result
//     (including deadline-degraded partials) instead of computing it
//     K times. A failed leader releases the followers to retry, one of
//     which becomes the new leader.
//   - Nearest-source warm start: a miss on an undirected graph seeds
//     the solve from the cached entry A minimizing distA[B] for new
//     source B — seed[v] = distA[v] + distA[B] is a valid upper bound
//     via the path B→A→v, and the Wasp repair scan (PrepareWarm)
//     converges it to exact distances. Seeding is attempted only when
//     warm starts are compatible with the pool's options (see
//     Options.WarmStart); incompatible configurations fall back to a
//     cold solve instead of erroring. Directed graphs always solve
//     cold: distA[B] bounds the A→B direction, not B→A.
//
// Staleness is impossible by construction: keys embed the graph's
// weight-covering content fingerprint (Graph.WeightFingerprint), so a
// hot-reloaded version — even one identical in shape — can never
// observe a predecessor's entries. InvalidateScope additionally frees
// a retired version's memory promptly and marks its in-flight solves
// do-not-store; the Registry calls it on every reload, rollback and
// removal.
//
// All methods are safe for concurrent use.
type Cache struct {
	conf CacheOptions

	mu      sync.Mutex
	lru     *list.List // of *cacheEntry, most recent at front
	entries map[cacheKey]*list.Element
	flights map[cacheKey]*flight
	bytes   int64

	hits       atomic.Int64
	misses     atomic.Int64
	coalesced  atomic.Int64
	evicted    atomic.Int64
	warmStarts atomic.Int64
	coldStarts atomic.Int64
	reuseShed  atomic.Int64

	hitLat histogram
}

// cacheKey identifies one cached result. The scope partitions entries
// by deployment (the Registry uses "name@version"); the graphFP pins
// the exact graph content so two scopes — or two graphs behind bare
// pools sharing one cache — can never alias each other's results
// unless the graphs are bit-identical, in which case sharing is
// correct.
type cacheKey struct {
	scope  string
	fp     graphFP
	source uint32
}

// graphFP is the cache's graph identity: the shape triple plus the
// weight-covering content fingerprint.
type graphFP struct {
	vertices int
	edges    int64
	directed bool
	weights  uint64
}

func fingerprintOf(g *Graph) graphFP {
	return graphFP{
		vertices: g.NumVertices(),
		edges:    g.NumEdges(),
		directed: g.Directed(),
		weights:  g.WeightFingerprint(),
	}
}

// cacheEntry is one stored result. Immutable after insert — hits and
// warm-start scans read it without holding the cache lock.
type cacheEntry struct {
	key   cacheKey
	cp    *Checkpoint // complete exact distances; Elapsed is the cumulative solve cost
	sum   uint64      // FNV-1a over cp.Dist at insert; ScrubEntries re-checks it
	algo  Algorithm
	steps int64
	prog  Progress
	size  int64
}

// distSum is the integrity hash recorded per cache entry: FNV-1a over
// the distance words. Entries are immutable after insert, so a scrub
// re-hash that disagrees can only mean the memory rotted underneath.
func distSum(dist []uint32) uint64 {
	h := uint64(1469598103934665603)
	for _, d := range dist {
		h ^= uint64(d)
		h *= 1099511628211
	}
	return h
}

// entryOverhead approximates per-entry bookkeeping (entry struct,
// checkpoint header, list element, map slot) charged against MaxBytes
// on top of the distance array.
const entryOverhead = 160

// flight is one in-flight solve under singleflight. res and err are
// written by the leader before close(done) and read by followers after
// <-done (the channel close publishes them).
type flight struct {
	done    chan struct{}
	res     *Result
	err     error
	noStore atomic.Bool // set by InvalidateScope: the scope retired mid-solve
}

// NewCache returns an empty cache with opt applied.
func NewCache(opt CacheOptions) *Cache {
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = defaultCacheBytes
	}
	return &Cache{
		conf:    opt,
		lru:     list.New(),
		entries: make(map[cacheKey]*list.Element),
		flights: make(map[cacheKey]*flight),
	}
}

// getOrSolve is the cache's front door, called by Pool.Run and
// Pool.Resume when the pool is cache-backed. callerWarm, when non-nil,
// is the caller's own validated checkpoint (Pool.Resume); it seeds the
// solve on a miss in place of the nearest-source scan. reuseOnly is
// the governor's BrownoutCacheOnly admission: exact hits, coalesced
// followers and seeded misses (caller checkpoint or nearest-source)
// are served as usual, but a miss that would solve cold — the most
// expensive class of query — sheds with ErrOverloaded instead.
func (c *Cache) getOrSolve(ctx context.Context, p *Pool, source Vertex, callerWarm *Checkpoint, reuseOnly bool) (*Result, error) {
	key := cacheKey{scope: p.cacheScope, fp: p.fp, source: uint32(source)}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			ent := el.Value.(*cacheEntry)
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			start := time.Now()
			res := ent.result()
			c.hitLat.record(time.Since(start))
			return res, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
			}
			if f.err == nil {
				// Share the leader's outcome — including a degraded
				// partial: the leader's deadline expiring means ours
				// would have too, and a valid upper-bound snapshot is
				// the contract for that case.
				return copyResult(f.res), nil
			}
			// The leader failed (cancelled, panicked twice, shed).
			// Its error may be private to its context — loop; the
			// first follower through becomes the new leader.
			continue
		}

		// Miss: determine the seed first — reuse-only admission needs it
		// before committing to lead a flight.
		warm := callerWarm
		if warm == nil {
			warm = c.nearestSeedLocked(p, key)
		}
		if reuseOnly && warm == nil {
			// Brownout cache-only rung: no cached work to reuse, so this
			// query would pay full solve cost. Shed it; no flight is
			// registered, so a later identical query retries cleanly.
			c.mu.Unlock()
			c.reuseShed.Add(1)
			p.shed.Add(1)
			p.gov.observeShed()
			return nil, ErrOverloaded
		}

		// Become the leader.
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()
		c.misses.Add(1)
		if warm != nil {
			c.warmStarts.Add(1)
		} else {
			c.coldStarts.Add(1)
		}

		res, err := p.admitAndSolve(ctx, source, warm)

		c.mu.Lock()
		delete(c.flights, key)
		store := err == nil && res != nil && res.Complete && !f.noStore.Load()
		if store {
			c.insertLocked(key, res)
		}
		c.mu.Unlock()
		f.res, f.err = res, err
		close(f.done)
		if err == nil && res != nil {
			// f.res is now shared with any followers: hand the leader
			// its own detached copy so post-return mutation of one
			// caller's Dist can never corrupt another's.
			return copyResult(res), nil
		}
		return res, err
	}
}

// nearestSeedLocked scans the cached entries of (scope, fp) for the
// source nearest to key.source and synthesizes a warm-start checkpoint
// from it: seed[v] = distA[v] + distA[B], clamped at Infinity, with
// seed[B] = 0 — every entry an upper bound on the true distance via
// the detour through A. Returns nil (cold solve) when warm seeding is
// unsupported by the pool's options, disabled, the graph is directed,
// or no finite-proximity entry exists. Called with c.mu held; the O(n)
// seed construction runs on the immutable entry after release.
func (c *Cache) nearestSeedLocked(p *Pool, key cacheKey) *Checkpoint {
	if c.conf.DisableWarm || key.fp.directed || warmStartSupported(p.opt) != nil {
		return nil
	}
	var best *cacheEntry
	bestD := uint32(Infinity)
	for el := c.lru.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if ent.key.scope != key.scope || ent.key.fp != key.fp {
			continue
		}
		if d := ent.cp.Dist[key.source]; d < bestD {
			best, bestD = ent, d
		}
	}
	if best == nil {
		return nil
	}
	src := best.cp.Dist // immutable after insert: safe to read unlocked too
	seed := make([]uint32, len(src))
	for i, dv := range src {
		seed[i] = satAdd32(dv, bestD)
	}
	seed[key.source] = 0
	return &Checkpoint{
		Source:        key.source,
		GraphVertices: key.fp.vertices,
		GraphEdges:    key.fp.edges,
		Directed:      key.fp.directed,
		WeightFP:      key.fp.weights,
		Dist:          seed,
	}
}

// satAdd32 adds two distances, saturating at Infinity (so an
// unreachable term stays unreachable).
func satAdd32(a, b uint32) uint32 {
	if s := uint64(a) + uint64(b); s < uint64(Infinity) {
		return uint32(s)
	}
	return Infinity
}

// insertLocked stores a completed result under key and evicts from the
// LRU tail until the budget holds. Called with c.mu held; res is the
// leader's detached result — its distances are copied, not aliased.
func (c *Cache) insertLocked(key cacheKey, res *Result) {
	size := int64(4*len(res.Dist)) + entryOverhead
	if size > c.conf.MaxBytes {
		return // larger than the whole budget: serve, don't store
	}
	if el, ok := c.entries[key]; ok {
		// A duplicate solve raced us (e.g. distinct flights before and
		// after an invalidation). Keep the existing entry fresh.
		c.lru.MoveToFront(el)
		return
	}
	ent := &cacheEntry{
		key: key,
		cp: &Checkpoint{
			Source:        key.source,
			GraphVertices: key.fp.vertices,
			GraphEdges:    key.fp.edges,
			Directed:      key.fp.directed,
			WeightFP:      key.fp.weights,
			Elapsed:       res.Elapsed,
			Dist:          append([]uint32(nil), res.Dist...),
		},
		algo:  res.Algorithm,
		steps: res.Steps,
		prog:  res.Progress,
		size:  size,
	}
	ent.sum = distSum(ent.cp.Dist)
	c.entries[key] = c.lru.PushFront(ent)
	c.bytes += size
	for c.bytes > c.conf.MaxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evicted.Add(1)
	}
}

// removeLocked unlinks one LRU element. Called with c.mu held.
func (c *Cache) removeLocked(el *list.Element) {
	ent := c.lru.Remove(el).(*cacheEntry)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
}

// result materializes a hit: a fresh Result whose distances are a
// detached copy of the entry's. Elapsed stays cumulative (the wall
// time originally paid for these distances, per the Result contract)
// and PriorElapsed carries all of it, so Elapsed - PriorElapsed ≈ 0
// reflects that this process did no solver work.
func (e *cacheEntry) result() *Result {
	return &Result{
		Dist:         append([]uint32(nil), e.cp.Dist...),
		Elapsed:      e.cp.Elapsed,
		PriorElapsed: e.cp.Elapsed,
		Algorithm:    e.algo,
		Steps:        e.steps,
		Complete:     true,
		Progress:     e.prog,
	}
}

// copyResult detaches a shared result for one caller.
func copyResult(r *Result) *Result {
	if r == nil {
		return nil
	}
	out := *r
	if r.Dist != nil {
		out.Dist = append([]uint32(nil), r.Dist...)
	}
	if r.Metrics != nil {
		m := *r.Metrics
		out.Metrics = &m
	}
	return &out
}

// InvalidateScope drops every cached entry whose scope matches and
// marks matching in-flight solves do-not-store, so nothing keyed to a
// retired deployment lingers in the budget or slips in after it. The
// Registry calls this on reload, rollback and removal; entries were
// already unreachable by the successor version (its scope and
// fingerprint differ), so this is memory hygiene, not a correctness
// requirement. Returns the number of entries dropped.
func (c *Cache) InvalidateScope(scope string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.key.scope == scope {
			c.removeLocked(el)
			dropped++
		}
		el = next
	}
	for key, f := range c.flights {
		if key.scope == scope {
			f.noStore.Store(true)
		}
	}
	return dropped
}

// harvestScope collects the complete exact distance arrays the cache
// holds for one (scope, graph) pair — at most one per source. The
// Registry calls this when mutating a graph, BEFORE activating the
// successor version (activation invalidates the scope): each harvested
// checkpoint is exact on the pre-mutation graph and therefore a legal
// prior for MutationDelta.Seed, turning yesterday's cache hits into
// repaired warm starts on the new version. Entries whose integrity
// hash no longer matches are skipped — a rotted distance array must
// not seed a repair. The returned checkpoints are live cache data:
// read-only for the caller.
func (c *Cache) harvestScope(scope string, fp graphFP) []*Checkpoint {
	c.mu.Lock()
	ents := make([]*cacheEntry, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if ent := el.Value.(*cacheEntry); ent.key.scope == scope && ent.key.fp == fp {
			ents = append(ents, ent)
		}
	}
	c.mu.Unlock()
	cps := make([]*Checkpoint, 0, len(ents))
	for _, ent := range ents {
		if distSum(ent.cp.Dist) != ent.sum {
			continue
		}
		cps = append(cps, ent.cp)
	}
	return cps
}

// ScrubEntries re-validates every resident entry's integrity hash and
// evicts the ones whose distance words no longer hash to the sum
// recorded at insert — in-memory bit rot turned into a clean miss (the
// next query re-solves) instead of a served wrong answer. The O(n)
// re-hashing runs off the cache lock: entries are immutable, so only
// the collection and the removal of failures need it. Returns the
// number of entries scanned and the number evicted as corrupt. The
// Scrubber calls this on its cadence; it is safe to call directly.
func (c *Cache) ScrubEntries() (scanned, corrupt int) {
	c.mu.Lock()
	ents := make([]*cacheEntry, 0, len(c.entries))
	for _, el := range c.entries {
		ents = append(ents, el.Value.(*cacheEntry))
	}
	c.mu.Unlock()

	var bad []*cacheEntry
	for _, ent := range ents {
		scanned++
		if distSum(ent.cp.Dist) != ent.sum {
			bad = append(bad, ent)
		}
	}
	if len(bad) == 0 {
		return scanned, 0
	}
	c.mu.Lock()
	for _, ent := range bad {
		// Remove only if this exact entry is still resident — an
		// eviction or invalidation may have raced the re-hash, and a
		// fresh entry under the same key is not the corrupt one.
		if el, ok := c.entries[ent.key]; ok && el.Value.(*cacheEntry) == ent {
			c.removeLocked(el)
			corrupt++
		}
	}
	c.mu.Unlock()
	return scanned, corrupt
}

// CacheStats is a point-in-time snapshot of a Cache's counters, the
// observability surface behind ssspd's /stats and /metrics.
type CacheStats struct {
	Hits       int64 `json:"hits"`        // exact-hit queries served without a solve
	Misses     int64 `json:"misses"`      // queries that led a solve
	Coalesced  int64 `json:"coalesced"`   // follower waits merged onto an in-flight solve
	Evicted    int64 `json:"evicted"`     // entries dropped by the LRU budget
	WarmStarts int64 `json:"warm_starts"` // misses seeded from a nearest cached source
	ColdStarts int64 `json:"cold_starts"` // misses solved from scratch
	ReuseShed  int64 `json:"reuse_shed"`  // cold misses shed by brownout reuse-only admission

	Entries  int   `json:"entries"`   // resident results
	Bytes    int64 `json:"bytes"`     // resident size charged against the budget
	MaxBytes int64 `json:"max_bytes"` // configured budget

	// HitLatency is the fixed-bucket histogram of exact-hit serve
	// times (the copy-and-return path; solver time never appears here).
	HitLatency HistogramSnapshot `json:"hit_latency"`
}

// Stats snapshots the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Coalesced:  c.coalesced.Load(),
		Evicted:    c.evicted.Load(),
		WarmStarts: c.warmStarts.Load(),
		ColdStarts: c.coldStarts.Load(),
		ReuseShed:  c.reuseShed.Load(),
		Entries:    entries,
		Bytes:      bytes,
		MaxBytes:   c.conf.MaxBytes,
		HitLatency: c.hitLat.snapshot(),
	}
}

// histogramBounds are the hit-latency bucket upper bounds. Hits are a
// memcpy plus map lookup — nanoseconds to low microseconds on small
// graphs, tens of microseconds on big ones — so the range runs 250ns
// to 16ms with the final bucket catching pathological stalls.
var histogramBounds = [...]time.Duration{
	250 * time.Nanosecond,
	1 * time.Microsecond,
	4 * time.Microsecond,
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1 * time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
}

// histogram is a fixed-bucket latency histogram, lock-free on record.
type histogram struct {
	counts [len(histogramBounds) + 1]atomic.Int64 // last is the overflow bucket
	sum    atomic.Int64                           // nanoseconds
}

func (h *histogram) record(d time.Duration) {
	i := 0
	for ; i < len(histogramBounds); i++ {
		if d <= histogramBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is an immutable view of a histogram: Counts[i] is
// the number of observations ≤ Bounds[i] (and > Bounds[i-1]); the
// final count is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []time.Duration `json:"bounds"`
	Counts []int64         `json:"counts"`
	Sum    time.Duration   `json:"sum"`
	Count  int64           `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: histogramBounds[:],
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}
