package wasp

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Helpers: random mutable graphs and valid mutation batches.
// ---------------------------------------------------------------------------

// incrGraph builds a random graph with a weighted spine (so most of
// the graph is reachable and distances are interesting) plus random
// cross edges.
func incrGraph(r *rand.Rand, n int, directed bool) *Graph {
	var edges []Edge
	for i := 1; i < n-4; i++ {
		edges = append(edges, Edge{From: Vertex(i - 1), To: Vertex(i), W: 1 + uint32(r.Intn(20))})
	}
	for i := 0; i < 2*n; i++ {
		u := Vertex(r.Intn(n))
		v := Vertex(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{From: u, To: v, W: 1 + uint32(r.Intn(30))})
	}
	return FromEdges(n, directed, edges)
}

// incrEdgeList extracts one record per logical edge (u < v once for
// undirected graphs).
func incrEdgeList(g *Graph) []Edge {
	var edges []Edge
	for u := 0; u < g.NumVertices(); u++ {
		nbrs, ws := g.OutNeighbors(Vertex(u))
		for i, v := range nbrs {
			if !g.Directed() && Vertex(u) > v {
				continue
			}
			edges = append(edges, Edge{From: Vertex(u), To: v, W: ws[i]})
		}
	}
	return edges
}

// incrBatch derives a valid mutation batch against g. mode is
// "decrease" (inserts and weight cuts only), "increase" (deletes and
// weight raises only), or "mixed".
func incrBatch(r *rand.Rand, g *Graph, mode string, size int) []Mutation {
	n := g.NumVertices()
	edges := incrEdgeList(g)
	var batch []Mutation
	touched := map[[2]Vertex]bool{}
	touch := func(u, v Vertex) bool {
		if touched[[2]Vertex{u, v}] || touched[[2]Vertex{v, u}] {
			return false
		}
		touched[[2]Vertex{u, v}] = true
		return true
	}
	hasEdge := func(u, v Vertex) bool {
		if _, ok := g.FindEdge(u, v); ok {
			return true
		}
		if !g.Directed() {
			if _, ok := g.FindEdge(v, u); ok {
				return true
			}
		}
		return false
	}
	for attempts := 0; len(batch) < size && attempts < 50*size; attempts++ {
		op := r.Intn(4)
		decrease := op < 2 // 0,1: insert / cut weight; 2,3: delete / raise weight
		if mode == "decrease" {
			decrease = true
		} else if mode == "increase" {
			decrease = false
		}
		if decrease {
			if op%2 == 0 { // insert
				u := Vertex(r.Intn(n))
				v := Vertex(r.Intn(n))
				if u == v || hasEdge(u, v) || !touch(u, v) {
					continue
				}
				batch = append(batch, Mutation{Kind: MutInsert, From: u, To: v, W: 1 + uint32(r.Intn(30))})
			} else { // cut an existing weight
				e := edges[r.Intn(len(edges))]
				if e.W <= 1 || !touch(e.From, e.To) {
					continue
				}
				batch = append(batch, Mutation{Kind: MutSetWeight, From: e.From, To: e.To, W: uint32(r.Intn(int(e.W)))})
			}
		} else {
			e := edges[r.Intn(len(edges))]
			if !touch(e.From, e.To) {
				continue
			}
			if op%2 == 0 { // delete
				batch = append(batch, Mutation{Kind: MutDelete, From: e.From, To: e.To})
			} else { // raise the weight
				batch = append(batch, Mutation{Kind: MutSetWeight, From: e.From, To: e.To, W: e.W + 1 + uint32(r.Intn(30))})
			}
		}
	}
	return batch
}

// oracleDist is the differential reference: sequential Dijkstra,
// sharing no code with the Wasp repair path under test.
func oracleDist(t testing.TB, g *Graph, source Vertex) []uint32 {
	t.Helper()
	res, err := RunContext(context.Background(), g, source, Options{Algorithm: AlgoDijkstra})
	if err != nil {
		t.Fatalf("oracle solve: %v", err)
	}
	return res.Dist
}

func firstDiff(a, b []uint32) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Satellite 1: the differential battery. Random mutation streams,
// incremental repair bit-identical to a fresh solve after every batch,
// across batch modes and steal policies. CI runs this under -race.
// ---------------------------------------------------------------------------

func TestIncrementalDifferential(t *testing.T) {
	policies := []struct {
		name string
		p    StealPolicy
	}{
		{"wasp", StealWasp}, {"random", StealRandom}, {"two-choice", StealTwoChoice},
	}
	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	for _, directed := range []bool{false, true} {
		for _, mode := range []string{"decrease", "increase", "mixed"} {
			for _, pol := range policies {
				directed, mode, pol := directed, mode, pol
				name := mode + "/" + pol.name
				if directed {
					name += "/directed"
				} else {
					name += "/undirected"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					r := rand.New(rand.NewSource(int64(len(mode))*31 + int64(pol.p)*7 + 5))
					const n = 160
					overlay := NewOverlay(incrGraph(r, n, directed))
					opt := Options{Algorithm: AlgoWasp, Workers: 4, Steal: pol.p}
					source := Vertex(0)

					prior := append([]uint32(nil), oracleDist(t, overlay.Snapshot(), source)...)
					for round := 0; round < rounds; round++ {
						batch := incrBatch(r, overlay.Snapshot(), mode, 1+r.Intn(5))
						if len(batch) == 0 {
							continue
						}
						delta, err := overlay.Mutate(batch)
						if err != nil {
							t.Fatalf("round %d: %v", round, err)
						}
						sess, err := NewSession(overlay.Snapshot(), opt)
						if err != nil {
							t.Fatal(err)
						}
						res, err := sess.RunIncremental(context.Background(), source, delta, prior)
						if err != nil {
							t.Fatalf("round %d: RunIncremental: %v", round, err)
						}
						if !res.Complete {
							t.Fatalf("round %d: incremental solve incomplete", round)
						}
						want := oracleDist(t, overlay.Snapshot(), source)
						if i := firstDiff(res.Dist, want); i >= 0 {
							t.Fatalf("round %d (%s, gen %d): incremental dist[%d] = %d, fresh solve %d",
								round, mode, delta.Generation(), i, res.Dist[i], want[i])
						}
						prior = append(prior[:0], res.Dist...)
					}
				})
			}
		}
	}
}

// FuzzIncremental drives the same differential check from fuzzed
// inputs: any mutation stream the generator can express must repair to
// exactly the fresh solution.
func FuzzIncremental(f *testing.F) {
	f.Add(uint64(1), uint8(3), false)
	f.Add(uint64(42), uint8(7), true)
	f.Add(uint64(12345), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, size uint8, directed bool) {
		r := rand.New(rand.NewSource(int64(seed)))
		const n = 64
		overlay := NewOverlay(incrGraph(r, n, directed))
		source := Vertex(0)
		prior := oracleDist(t, overlay.Snapshot(), source)

		batch := incrBatch(r, overlay.Snapshot(), "mixed", 1+int(size%8))
		if len(batch) == 0 {
			t.Skip("no applicable mutations")
		}
		delta, err := overlay.Mutate(batch)
		if err != nil {
			t.Fatalf("mutate: %v", err)
		}
		sess, err := NewSession(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.RunIncremental(context.Background(), source, delta, prior)
		if err != nil {
			t.Fatalf("RunIncremental: %v", err)
		}
		want := oracleDist(t, overlay.Snapshot(), source)
		if i := firstDiff(res.Dist, want); i >= 0 {
			t.Fatalf("incremental dist[%d] = %d, fresh solve %d", i, res.Dist[i], want[i])
		}
	})
}

// ---------------------------------------------------------------------------
// Satellite 2: metamorphic properties.
// ---------------------------------------------------------------------------

// TestMetamorphicNonImprovingInsert: inserting an edge that cannot
// shorten any path leaves the distance array exactly unchanged.
func TestMetamorphicNonImprovingInsert(t *testing.T) {
	for _, directed := range []bool{false, true} {
		r := rand.New(rand.NewSource(3))
		g := incrGraph(r, 96, directed)
		source := Vertex(0)
		prior := oracleDist(t, g, source)

		// Find a missing pair of reachable vertices and pick a weight
		// that cannot improve either direction.
		var u, v Vertex
		var w Weight
		found := false
		for attempts := 0; attempts < 1000 && !found; attempts++ {
			u = Vertex(r.Intn(96))
			v = Vertex(r.Intn(96))
			if u == v || prior[u] == Infinity || prior[v] == Infinity {
				continue
			}
			if _, ok := g.FindEdge(u, v); ok {
				continue
			}
			if _, ok := g.FindEdge(v, u); ok && !directed {
				continue
			}
			diff := func(a, b uint32) uint32 {
				if a > b {
					return a - b
				}
				return b - a
			}
			w = diff(prior[u], prior[v]) + 1 + uint32(r.Intn(5))
			found = true
		}
		if !found {
			t.Fatal("no insertable non-improving edge found")
		}

		overlay := NewOverlay(g)
		delta, err := overlay.Mutate([]Mutation{{Kind: MutInsert, From: u, To: v, W: w}})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.RunIncremental(context.Background(), source, delta, prior)
		if err != nil {
			t.Fatal(err)
		}
		if i := firstDiff(res.Dist, prior); i >= 0 {
			t.Fatalf("directed=%v: non-improving insert changed dist[%d]: %d -> %d", directed, i, prior[i], res.Dist[i])
		}
	}
}

// TestMetamorphicNonTreeDeleteNoop: deleting an edge no shortest path
// uses changes nothing — and the repair seed must prove it by
// invalidating zero vertices.
func TestMetamorphicNonTreeDeleteNoop(t *testing.T) {
	for _, directed := range []bool{false, true} {
		r := rand.New(rand.NewSource(5))
		g := incrGraph(r, 96, directed)
		source := Vertex(0)
		prior := oracleDist(t, g, source)

		// A strictly slack edge in every stored direction is unused by
		// every shortest path.
		slack := func(u, v Vertex, w Weight) bool {
			du, dv := prior[u], prior[v]
			if du != Infinity && dv != Infinity && uint64(du)+uint64(w) == uint64(dv) {
				return false
			}
			return true
		}
		var pick *Edge
		for _, e := range incrEdgeList(g) {
			if !slack(e.From, e.To, e.W) {
				continue
			}
			if !directed && !slack(e.To, e.From, e.W) {
				continue
			}
			e := e
			pick = &e
			break
		}
		if pick == nil {
			t.Fatal("no slack edge found")
		}

		overlay := NewOverlay(g)
		delta, err := overlay.Mutate([]Mutation{{Kind: MutDelete, From: pick.From, To: pick.To}})
		if err != nil {
			t.Fatal(err)
		}
		if inv, err := delta.Invalidated(source, prior); err != nil || inv != 0 {
			t.Fatalf("directed=%v: deleting slack edge (%d,%d) invalidated %d vertices (err %v), want 0",
				directed, pick.From, pick.To, inv, err)
		}
		sess, err := NewSession(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.RunIncremental(context.Background(), source, delta, prior)
		if err != nil {
			t.Fatal(err)
		}
		if i := firstDiff(res.Dist, prior); i >= 0 {
			t.Fatalf("directed=%v: slack-edge delete changed dist[%d]: %d -> %d", directed, i, prior[i], res.Dist[i])
		}
	}
}

// TestMetamorphicInverseRestores: applying a batch and then its exact
// inverse restores both the graph (fingerprint included) and the
// repaired distance array bit-for-bit.
func TestMetamorphicInverseRestores(t *testing.T) {
	for _, directed := range []bool{false, true} {
		r := rand.New(rand.NewSource(9))
		g := incrGraph(r, 96, directed)
		source := Vertex(0)
		origFP := g.WeightFingerprint()
		prior := oracleDist(t, g, source)

		batch := incrBatch(r, g, "mixed", 6)
		inverse := make([]Mutation, 0, len(batch))
		for _, m := range batch {
			switch m.Kind {
			case MutInsert:
				inverse = append(inverse, Mutation{Kind: MutDelete, From: m.From, To: m.To})
			case MutDelete:
				w, _ := g.FindEdge(m.From, m.To)
				inverse = append(inverse, Mutation{Kind: MutInsert, From: m.From, To: m.To, W: w})
			case MutSetWeight:
				w, _ := g.FindEdge(m.From, m.To)
				inverse = append(inverse, Mutation{Kind: MutSetWeight, From: m.From, To: m.To, W: w})
			}
		}

		overlay := NewOverlay(g)
		run := func(delta *MutationDelta, seed []uint32) []uint32 {
			t.Helper()
			sess, err := NewSession(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
				res, err := sess.RunIncremental(context.Background(), source, delta, seed)
			if err != nil {
				t.Fatal(err)
			}
			return append([]uint32(nil), res.Dist...)
		}

		d1, err := overlay.Mutate(batch)
		if err != nil {
			t.Fatal(err)
		}
		mid := run(d1, prior)
		d2, err := overlay.Mutate(inverse)
		if err != nil {
			t.Fatal(err)
		}
		back := run(d2, mid)

		if got := overlay.Snapshot().WeightFingerprint(); got != origFP {
			t.Fatalf("directed=%v: batch+inverse fingerprint %x != original %x", directed, got, origFP)
		}
		if i := firstDiff(back, prior); i >= 0 {
			t.Fatalf("directed=%v: batch+inverse changed dist[%d]: %d -> %d", directed, i, prior[i], back[i])
		}
	}
}

// ---------------------------------------------------------------------------
// API contract tests: Session/Pool/Overlay validation, and the
// registry's mutate-and-swap lifecycle.
// ---------------------------------------------------------------------------

func TestRunIncrementalValidation(t *testing.T) {
	g := chain(8, 1)
	overlay := NewOverlay(g)
	delta, err := overlay.Mutate([]Mutation{{Kind: MutSetWeight, From: 0, To: 1, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	prior := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	ctx := context.Background()

	sess, err := NewSession(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunIncremental(ctx, 0, nil, prior); err == nil {
		t.Error("nil delta accepted")
	}
	if _, err := sess.RunIncremental(ctx, 0, delta, prior[:4]); err == nil {
		t.Error("short prior accepted")
	}
	if _, err := sess.RunIncremental(ctx, 3, delta, prior); err == nil {
		t.Error("prior with nonzero source distance accepted")
	}

	// A session on the PRE-mutation graph must reject the delta.
	stale, err := NewSession(g, Options{Algorithm: AlgoWasp, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stale.RunIncremental(ctx, 0, delta, prior); err == nil {
		t.Error("pre-mutation session accepted a post-mutation delta")
	}

	// The happy path converges to the mutated graph's distances.
	res, err := sess.RunIncremental(ctx, 0, delta, prior)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleDist(t, overlay.Snapshot(), 0)
	if i := firstDiff(res.Dist, want); i >= 0 {
		t.Fatalf("dist[%d] = %d, want %d", i, res.Dist[i], want[i])
	}
}

func TestPoolRunIncremental(t *testing.T) {
	g := chain(16, 2)
	overlay := NewOverlay(g)
	prior := oracleDist(t, g, 0)

	delta, err := overlay.Mutate([]Mutation{
		{Kind: MutSetWeight, From: 0, To: 1, W: 9},
		{Kind: MutInsert, From: 0, To: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(overlay.Snapshot(), Options{Algorithm: AlgoWasp, Workers: 2},
		PoolOptions{Sessions: 1, QueueDepth: 8, QueueWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = pool.Close(ctx)
	}()
	res, err := pool.RunIncremental(context.Background(), 0, delta, prior)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleDist(t, overlay.Snapshot(), 0)
	if i := firstDiff(res.Dist, want); i >= 0 {
		t.Fatalf("dist[%d] = %d, want %d", i, res.Dist[i], want[i])
	}

	// A pool still serving the pre-mutation graph must reject the delta.
	stalePool, err := NewPool(g, Options{Algorithm: AlgoWasp, Workers: 2},
		PoolOptions{Sessions: 1, QueueDepth: 8, QueueWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = stalePool.Close(ctx)
	}()
	if _, err := stalePool.RunIncremental(context.Background(), 0, delta, prior); err == nil {
		t.Error("pre-mutation pool accepted a post-mutation delta")
	}
}

func TestOverlayConcurrentSnapshots(t *testing.T) {
	overlay := NewOverlay(chain(64, 1))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := overlay.Snapshot()
			// A snapshot is immutable: its edge count and fingerprint
			// must be internally consistent no matter how many batches
			// land concurrently.
			if g.NumVertices() != 64 {
				panic("snapshot vertex count changed")
			}
			_ = g.WeightFingerprint()
			_ = oracleDist(t, g, 0)
		}
	}()
	w := Weight(2)
	for i := 0; i < 20; i++ {
		if _, err := overlay.Mutate([]Mutation{{Kind: MutSetWeight, From: 0, To: 1, W: w}}); err != nil {
			t.Fatal(err)
		}
		w++
	}
	close(stop)
	<-done
	if got := overlay.Generation(); got != 20 {
		t.Fatalf("generation = %d, want 20", got)
	}
}

func TestRegistryMutate(t *testing.T) {
	r := testRegistry(t)
	ctx := context.Background()
	const n = 24

	if _, _, err := r.Mutate(ctx, "missing", []Mutation{{Kind: MutDelete, From: 0, To: 1}}); err == nil {
		t.Fatal("mutate of unknown graph accepted")
	}

	if err := r.Load(ctx, chainBundle("g", 1, n, 1)); err != nil {
		t.Fatal(err)
	}

	// Malformed batch: rejected whole, v1 keeps serving.
	if _, _, err := r.Mutate(ctx, "g", []Mutation{{Kind: MutDelete, From: 0, To: 9}}); err == nil {
		t.Fatal("malformed batch accepted")
	}
	if st, ok := r.Status("g"); !ok || st.Version != 1 || st.State != GraphServing {
		t.Fatalf("after rejected batch: status %+v", st)
	}

	// A real mutation bumps the version and is immediately visible.
	version, delta, err := r.Mutate(ctx, "g", []Mutation{{Kind: MutSetWeight, From: 0, To: 1, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("version = %d, want 2", version)
	}
	if delta.Increased() != 1 || delta.Decreased() != 0 {
		t.Fatalf("delta = %d increased / %d decreased, want 1/0", delta.Increased(), delta.Decreased())
	}
	res, err := r.Run(ctx, "g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Dist[n-1], uint32(5+(n-2)); got != want {
		t.Fatalf("post-mutation dist[%d] = %d, want %d", n-1, got, want)
	}
	if st := r.ReloadStats(); st.Mutated != 1 {
		t.Fatalf("ReloadStats.Mutated = %d, want 1", st.Mutated)
	}

	// Rollback still works: the pre-mutation version was retired into
	// the history, so the original weights come back.
	if _, err := r.Rollback(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	res, err = r.Run(ctx, "g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Dist[n-1], uint32(n-1); got != want {
		t.Fatalf("post-rollback dist[%d] = %d, want %d", n-1, got, want)
	}
}

// TestRegistryMutateRejectsRelabeled: mutation batches address
// original ids, so relabeled deployments must refuse them.
func TestRegistryMutateRejectsRelabeled(t *testing.T) {
	r := testRegistry(t)
	ctx := context.Background()
	g := chain(16, 1)
	rg, perm := RelabelByDegree(g)
	b := &Bundle{
		Manifest: BundleManifest{Name: "g", Version: 1},
		Graph:    rg,
		Relabel:  perm,
	}
	if err := r.Load(ctx, b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Mutate(ctx, "g", []Mutation{{Kind: MutSetWeight, From: 0, To: 1, W: 2}}); err == nil {
		t.Fatal("mutation on relabeled deployment accepted")
	}
}
