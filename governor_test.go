package wasp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// recordTransitions wires a transition log into conf and returns the
// log. The hook runs under the governor's lock, so reads must wait for
// the driving goroutine to finish — these tests drive synchronously.
func recordTransitions(conf *GovernorConfig) *[]BrownoutTransition {
	log := &[]BrownoutTransition{}
	conf.OnTransition = func(tr BrownoutTransition) { *log = append(*log, tr) }
	return log
}

// TestGovernorLadderMonotone drives the ladder state machine directly
// with a deterministic pressure sequence (bypassing the EWMAs via
// step) and pins the acceptance property: rising pressure walks the
// ladder up one rung per evaluation and never jumps; falling pressure
// walks it back down to BrownoutNone; pressure inside the hysteresis
// band moves nothing.
func TestGovernorLadderMonotone(t *testing.T) {
	conf := GovernorConfig{MinDwell: -1} // dwell off: transitions gate on pressure only
	log := recordTransitions(&conf)
	g := NewGovernor(conf)

	steps := []struct {
		pressure float64
		want     BrownoutLevel
	}{
		{0.10, BrownoutNone},      // calm
		{0.69, BrownoutNone},      // just under enter[1]=0.70
		{0.72, BrownoutCacheOnly}, // cross enter[1]
		{0.72, BrownoutCacheOnly}, // hysteresis: above exit[1], below enter[2]
		{1.00, BrownoutPartial},   // saturated pressure still moves ONE rung
		{1.00, BrownoutShed},      // ...and one more
		{1.00, BrownoutShed},      // top of the ladder
		{0.86, BrownoutShed},      // above exit[3]=0.85: hold
		{0.80, BrownoutPartial},   // below exit[3]: descend one
		{0.72, BrownoutPartial},   // above exit[2]=0.70: hold
		{0.60, BrownoutCacheOnly}, // below exit[2]
		{0.00, BrownoutNone},      // below exit[1]=0.50
		{0.00, BrownoutNone},      // floor of the ladder
	}

	for i, s := range steps {
		g.step(s.pressure)
		if got := g.Level(); got != s.want {
			t.Fatalf("step %d (pressure %.2f): level = %v, want %v", i, s.pressure, got, s.want)
		}
		if p := g.Pressure(); p != s.pressure {
			t.Fatalf("step %d: Pressure() = %v, want %v", i, p, s.pressure)
		}
	}

	// Every recorded transition moved exactly one rung, and the full
	// walk was 0→1→2→3→2→1→0.
	wantWalk := []BrownoutLevel{
		BrownoutCacheOnly, BrownoutPartial, BrownoutShed,
		BrownoutPartial, BrownoutCacheOnly, BrownoutNone,
	}
	if len(*log) != len(wantWalk) {
		t.Fatalf("transitions = %d, want %d (%+v)", len(*log), len(wantWalk), *log)
	}
	for i, tr := range *log {
		if tr.To != wantWalk[i] {
			t.Fatalf("transition %d: %v -> %v, want -> %v", i, tr.From, tr.To, wantWalk[i])
		}
		if d := tr.To - tr.From; d != 1 && d != -1 {
			t.Fatalf("transition %d jumped %d rungs: %+v", i, d, tr)
		}
	}
	if got := g.Stats().Transitions; got != int64(len(wantWalk)) {
		t.Fatalf("Stats().Transitions = %d, want %d", got, len(wantWalk))
	}
}

// TestGovernorDwell: after one transition, a second cannot follow
// within MinDwell even at saturated pressure — the ladder is
// rate-limited in both directions.
func TestGovernorDwell(t *testing.T) {
	g := NewGovernor(GovernorConfig{MinDwell: time.Hour})
	g.step(1.0)
	if got := g.Level(); got != BrownoutCacheOnly {
		t.Fatalf("first step: level = %v, want cache-only", got)
	}
	g.step(1.0)
	g.step(1.0)
	if got := g.Level(); got != BrownoutCacheOnly {
		t.Fatalf("level advanced within MinDwell: %v", got)
	}
	g.step(0.0)
	if got := g.Level(); got != BrownoutCacheOnly {
		t.Fatalf("level descended within MinDwell: %v", got)
	}
}

// TestGovernorRetryAfter: the hint is zero before any solve has been
// observed (callers fall back to their static value), tracks the
// queue-drain estimate (queued+1)·service/slots once solves flow, and
// clamps to MaxRetryAfter.
func TestGovernorRetryAfter(t *testing.T) {
	g := NewGovernor(GovernorConfig{Slots: 2, MaxRetryAfter: 30 * time.Second, MinDwell: -1})
	if ra := g.RetryAfter(); ra != 0 {
		t.Fatalf("RetryAfter before any solve = %v, want 0", ra)
	}

	// Converge the service-time EWMA to ~100ms.
	for i := 0; i < 100; i++ {
		g.observeSolve(100 * time.Millisecond)
	}
	g.observeAttempt(3, 8) // queued=3 recorded for the drain estimate

	// Expected ≈ 0.1s × (3+1) / 2 slots = 200ms, within EWMA rounding.
	ra := g.RetryAfter()
	if ra < 150*time.Millisecond || ra > 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want ≈200ms", ra)
	}

	// A tiny ceiling clamps the estimate.
	clamped := NewGovernor(GovernorConfig{Slots: 1, MaxRetryAfter: time.Millisecond, MinDwell: -1})
	for i := 0; i < 100; i++ {
		clamped.observeSolve(time.Second)
	}
	clamped.observeAttempt(10, 16)
	if ra := clamped.RetryAfter(); ra != time.Millisecond {
		t.Fatalf("clamped RetryAfter = %v, want 1ms", ra)
	}
}

// TestGovernorTrafficClockedRecovery: a governor driven to full shed by
// measured queue waits recovers on admission attempts alone — each
// shed attempt decays the queue-delay EWMA toward the expected wait of
// the (now empty) queue, so the ladder descends back to BrownoutNone
// without a single admitted solve. This is the property that makes
// BrownoutShed self-terminating rather than absorbing.
func TestGovernorTrafficClockedRecovery(t *testing.T) {
	g := NewGovernor(GovernorConfig{QueueDelayBudget: 10 * time.Millisecond, MinDwell: -1})
	for i := 0; i < 8; i++ {
		g.observeWait(50 * time.Millisecond) // 5× budget: pressure pins at 1
	}
	if got := g.Level(); got != BrownoutShed {
		t.Fatalf("after sustained waits: level = %v, want shed", got)
	}

	// Pure attempt traffic against an empty queue: no waits, no solves.
	for i := 0; i < 200 && g.Level() != BrownoutNone; i++ {
		g.observeAttempt(0, 8)
	}
	if got := g.Level(); got != BrownoutNone {
		t.Fatalf("governor never recovered: level %v, pressure %.3f", got, g.Pressure())
	}
}

// freezeLevel pins a governor at one ladder rung for the duration of a
// test: an hour of dwell from "now" means no observation can move it.
func freezeLevel(g *Governor, lvl BrownoutLevel) {
	g.mu.Lock()
	g.level.Store(int32(lvl))
	g.lastChange = time.Now()
	g.mu.Unlock()
}

// TestPoolBrownoutCacheOnly: at BrownoutCacheOnly a cache-backed pool
// serves exact hits and warm-startable misses but sheds seedless cold
// misses with ErrOverloaded, counting them on both the pool and the
// cache.
func TestPoolBrownoutCacheOnly(t *testing.T) {
	// Undirected path graph so nearest-source warm seeding applies.
	n := 64
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{From: Vertex(i), To: Vertex(i + 1), W: 1})
	}
	g := FromEdges(n, false, edges)

	gov := NewGovernor(GovernorConfig{MinDwell: time.Hour})
	cache := NewCache(CacheOptions{})
	p, err := NewPool(g, Options{}, PoolOptions{
		Sessions: 1, Cache: cache, CacheScope: "t", Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())
	ctx := context.Background()

	// Populate the cache at full service.
	if _, err := p.Run(ctx, 0); err != nil {
		t.Fatalf("priming solve: %v", err)
	}

	freezeLevel(gov, BrownoutCacheOnly)

	// Exact hit: served.
	res, err := p.Run(ctx, 0)
	if err != nil || !res.Complete {
		t.Fatalf("cache hit under brownout: %v, %+v", err, res)
	}
	// Warm-startable miss (source 1 seeds from cached source 0): served.
	res, err = p.Run(ctx, 1)
	if err != nil || !res.Complete {
		t.Fatalf("warm miss under brownout: %v, %+v", err, res)
	}
	if got := cache.Stats().WarmStarts; got != 1 {
		t.Fatalf("warm starts = %d, want 1", got)
	}

	// A directed-graph pool (no warm seeding) sharing nothing cached:
	// cold miss, shed. Here: invalidate the scope so nothing can seed.
	cache.InvalidateScope("t")
	if _, err := p.Run(ctx, 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cold miss under brownout: err = %v, want ErrOverloaded", err)
	}
	if got := cache.Stats().ReuseShed; got != 1 {
		t.Fatalf("cache ReuseShed = %d, want 1", got)
	}
	if got := p.Stats().Shed; got != 1 {
		t.Fatalf("pool Shed = %d, want 1", got)
	}

	// Recovery: back at BrownoutNone the same cold miss solves.
	freezeLevel(gov, BrownoutNone)
	res, err = p.Run(ctx, 5)
	if err != nil || !res.Complete {
		t.Fatalf("cold miss after recovery: %v, %+v", err, res)
	}
}

// TestPoolBrownoutShedShedsEverything: BrownoutShed rejects every
// query — even exact cache hits — with ErrOverloaded, and the pool
// recovers the moment the ladder descends.
func TestPoolBrownoutShedShedsEverything(t *testing.T) {
	g := FromEdges(3, true, []Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
	})
	gov := NewGovernor(GovernorConfig{MinDwell: time.Hour})
	cache := NewCache(CacheOptions{})
	p, err := NewPool(g, Options{}, PoolOptions{
		Sessions: 1, Cache: cache, CacheScope: "t", Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())
	ctx := context.Background()

	if _, err := p.Run(ctx, 0); err != nil {
		t.Fatal(err)
	}
	freezeLevel(gov, BrownoutShed)
	if _, err := p.Run(ctx, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cached source under shed: err = %v, want ErrOverloaded", err)
	}
	if got := gov.Stats().GovernorSheds; got != 1 {
		t.Fatalf("governor sheds = %d, want 1", got)
	}
	freezeLevel(gov, BrownoutNone)
	if res, err := p.Run(ctx, 0); err != nil || !res.Complete {
		t.Fatalf("after recovery: %v, %+v", err, res)
	}
}

// TestPoolBrownoutPartialClampsDeadline: at BrownoutPartial a pool with
// no deadline of its own solves under the governor's DegradedDeadline
// and returns the partial upper-bound snapshot with a nil error — the
// PR-3 degradation contract, now reachable by overload alone.
func TestPoolBrownoutPartialClampsDeadline(t *testing.T) {
	g, err := GenerateWorkload("kron", WorkloadConfig{N: 1 << 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	gov := NewGovernor(GovernorConfig{MinDwell: time.Hour, DegradedDeadline: time.Nanosecond})
	p, err := NewPool(g, Options{Workers: 2}, PoolOptions{Sessions: 1, Governor: gov})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())

	freezeLevel(gov, BrownoutPartial)
	res, err := p.Run(context.Background(), 0)
	if err != nil {
		t.Fatalf("browned-out solve errored: %v", err)
	}
	if res == nil || res.Complete {
		t.Fatalf("want a degraded partial result, got %+v", res)
	}
	if got := p.Stats().Degraded; got != 1 {
		t.Fatalf("degraded = %d, want 1", got)
	}
}
