package wasp_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wasp"
)

// TestObserverOnSession: an observer bound to a session collects a
// fresh trace and fresh counters per run, and its cumulative totals
// accumulate across runs.
func TestObserverOnSession(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{})
	sess, err := wasp.NewSession(g, wasp.Options{
		Algorithm: wasp.AlgoWasp, Workers: 4, Delta: 4, Theta: 64,
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := wasp.SourceInLargestComponent(g, 1)

	var runTotals []wasp.WorkerMetrics
	for run := 0; run < 2; run++ {
		res, err := sess.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		// Per-run trace: exactly one terminate per worker, every run.
		term := 0
		for _, e := range obs.Events() {
			if e.Kind == wasp.TraceTerminate {
				term++
			}
		}
		if term != 4 {
			t.Fatalf("run %d: %d terminate events, want 4 (trace must reset per run)", run, term)
		}
		// Per-worker counters sum to the aggregate Result.Metrics reports.
		tot := obs.Totals()
		var sum int64
		for _, w := range obs.PerWorker() {
			sum += w.Relaxations
		}
		if sum != tot.Relaxations {
			t.Fatalf("run %d: per-worker relaxation sum %d != totals %d", run, sum, tot.Relaxations)
		}
		if res.Metrics == nil || res.Metrics.Relaxations != tot.Relaxations {
			t.Fatalf("run %d: Result.Metrics disagrees with observer totals", run)
		}
		if tot.Relaxations == 0 {
			t.Fatalf("run %d: no relaxations observed", run)
		}
		runTotals = append(runTotals, tot)
	}

	cum := obs.Cumulative()
	if cum.Solves != 2 {
		t.Fatalf("cumulative solves = %d, want 2", cum.Solves)
	}
	if want := runTotals[0].Relaxations + runTotals[1].Relaxations; cum.Metrics.Relaxations != want {
		t.Fatalf("cumulative relaxations = %d, want %d (sum of runs)", cum.Metrics.Relaxations, want)
	}
}

// TestObserverPerWorkerSumsToAggregate: every counter in the
// per-worker breakdown must sum to the aggregate — the breakdown is
// lossless.
func TestObserverPerWorkerSumsToAggregate(t *testing.T) {
	g, err := wasp.GenerateWorkload("road-usa", wasp.WorkloadConfig{N: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{Timing: true})
	res, err := wasp.Run(g, wasp.SourceInLargestComponent(g, 1), wasp.Options{
		Algorithm: wasp.AlgoWasp, Workers: 3, Delta: 8, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := obs.Totals()
	var sum wasp.WorkerMetrics
	for _, w := range obs.PerWorker() {
		sum.Relaxations += w.Relaxations
		sum.Improvements += w.Improvements
		sum.StaleSkips += w.StaleSkips
		sum.StealAttempts += w.StealAttempts
		sum.StealHits += w.StealHits
		sum.StealRounds += w.StealRounds
		sum.ChunksDrained += w.ChunksDrained
		sum.BucketAdvances += w.BucketAdvances
		sum.QueueOpNS += w.QueueOpNS
		sum.BarrierNS += w.BarrierNS
		sum.StealNS += w.StealNS
		sum.IdleNS += w.IdleNS
		for i := range w.TierHits {
			sum.TierHits[i] += w.TierHits[i]
		}
	}
	if sum != tot {
		t.Fatalf("per-worker sum != aggregate:\nsum %+v\ntot %+v", sum, tot)
	}
	if res.Metrics.Relaxations != tot.Relaxations {
		t.Fatalf("Result.Metrics.Relaxations = %d, observer totals %d",
			res.Metrics.Relaxations, tot.Relaxations)
	}
	// Steal hits, when any occurred, must be fully attributed to tiers
	// under the wasp policy.
	var tiers int64
	for _, h := range tot.TierHits {
		tiers += h
	}
	if tiers != tot.StealHits {
		t.Fatalf("tier hits %v sum to %d, want StealHits %d", tot.TierHits, tiers, tot.StealHits)
	}
}

// TestObserverExclusiveBinding: a bound observer is rejected by a
// second user instead of racing, and a one-shot Run releases it.
func TestObserverExclusiveBinding(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{})
	sess, err := wasp.NewSession(g, wasp.Options{Workers: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wasp.NewSession(g, wasp.Options{Workers: 2, Observer: obs}); err == nil {
		t.Fatal("second session bound an already-bound observer")
	}
	if _, err := wasp.Run(g, 0, wasp.Options{Workers: 2, Observer: obs}); err == nil {
		t.Fatal("one-shot run bound an already-bound observer")
	}
	_ = sess

	free := wasp.NewObserver(wasp.ObserverConfig{})
	if _, err := wasp.Run(g, 0, wasp.Options{Workers: 2, Observer: free}); err != nil {
		t.Fatal(err)
	}
	// The one-shot run released it: a session can now bind it.
	if _, err := wasp.NewSession(g, wasp.Options{Workers: 2, Observer: free}); err != nil {
		t.Fatalf("observer not released after one-shot run: %v", err)
	}
}

// TestObserverChromeTraceAndSummary: the exports parse and carry the
// scheduler's story.
func TestObserverChromeTraceAndSummary(t *testing.T) {
	g, err := wasp.GenerateWorkload("road-usa", wasp.WorkloadConfig{N: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{})
	if _, err := wasp.Run(g, wasp.SourceInLargestComponent(g, 1), wasp.Options{
		Algorithm: wasp.AlgoWasp, Workers: 4, Delta: 16, Observer: obs,
	}); err != nil {
		t.Fatal(err)
	}

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"thread_name", "terminate", "advance"} {
		if !names[want] {
			t.Fatalf("chrome trace missing %q events (have %v)", want, names)
		}
	}

	var sum bytes.Buffer
	if err := obs.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheduler summary", "tier hits", "worker", "total"} {
		if !strings.Contains(sum.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

// TestObserverTraceDisabled: TraceCapacity < 0 collects counters only.
func TestObserverTraceDisabled(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{TraceCapacity: -1})
	if _, err := wasp.Run(g, 0, wasp.Options{Workers: 2, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if obs.Events() != nil {
		t.Fatal("events collected with tracing disabled")
	}
	if obs.Totals().Relaxations == 0 {
		t.Fatal("counters must still collect with tracing disabled")
	}
	if err := obs.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("chrome export must error with tracing disabled")
	}
}

// TestObserverOnBaselineAlgorithm: observers work (counters only) on
// the non-Wasp paths too — the session fallback reuses the observer's
// collectors per run.
func TestObserverOnBaselineAlgorithm(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	obs := wasp.NewObserver(wasp.ObserverConfig{})
	sess, err := wasp.NewSession(g, wasp.Options{
		Algorithm: wasp.AlgoGAP, Workers: 2, Delta: 8, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sess.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if obs.Totals().Relaxations == 0 {
			t.Fatalf("run %d: no relaxations observed on baseline path", i)
		}
	}
	if cum := obs.Cumulative(); cum.Solves != 2 {
		t.Fatalf("cumulative solves = %d, want 2", cum.Solves)
	}
}

// TestPoolObservers: per-session observers aggregate the pool's whole
// history and reach the OnSolve hook quiescent.
func TestPoolObservers(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var hookCalls int
	var hookHadObserver bool
	pool, err := wasp.NewPool(g,
		wasp.Options{Algorithm: wasp.AlgoWasp, Workers: 2, Delta: 4},
		wasp.PoolOptions{
			Sessions: 2,
			Observe:  &wasp.ObserverConfig{},
			OnSolve: func(o wasp.SolveObservation) {
				hookCalls++
				hookHadObserver = hookHadObserver || o.Observer != nil
				if o.Observer != nil {
					// The observer is quiescent here: exports must work.
					_ = o.Observer.WriteSummary(&bytes.Buffer{})
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close(context.Background())

	const solves = 6
	for i := 0; i < solves; i++ {
		if _, err := pool.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
	}
	obsList := pool.SessionObservers()
	if len(obsList) != 2 {
		t.Fatalf("SessionObservers = %d entries, want 2", len(obsList))
	}
	var totalSolves, totalRelax int64
	for _, o := range obsList {
		c := o.Cumulative()
		totalSolves += c.Solves
		totalRelax += c.Metrics.Relaxations
	}
	if totalSolves != solves {
		t.Fatalf("observers absorbed %d solves, want %d", totalSolves, solves)
	}
	if totalRelax == 0 {
		t.Fatal("observers saw no relaxations")
	}
	if hookCalls != solves || !hookHadObserver {
		t.Fatalf("OnSolve: %d calls (want %d), observer seen: %v", hookCalls, solves, hookHadObserver)
	}
}

// TestPoolObserveExclusiveWithOptionsObserver: the two ways of wiring
// observers into a pool are mutually exclusive.
func TestPoolObserveExclusiveWithOptionsObserver(t *testing.T) {
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = wasp.NewPool(g,
		wasp.Options{Observer: wasp.NewObserver(wasp.ObserverConfig{})},
		wasp.PoolOptions{Sessions: 2, Observe: &wasp.ObserverConfig{}})
	if err == nil {
		t.Fatal("NewPool accepted both Observe and Options.Observer")
	}
}
