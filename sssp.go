package wasp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"wasp/internal/algebra"
	"wasp/internal/baseline/bellmanford"
	"wasp/internal/baseline/dijkstra"
	"wasp/internal/baseline/galois"
	"wasp/internal/baseline/gapds"
	"wasp/internal/baseline/gbbs"
	"wasp/internal/baseline/mqsssp"
	"wasp/internal/baseline/radius"
	"wasp/internal/baseline/relaxed"
	"wasp/internal/baseline/seqdelta"
	"wasp/internal/baseline/stepping"
	"wasp/internal/core"
	"wasp/internal/mbq"
	"wasp/internal/metrics"
	"wasp/internal/numa"
	"wasp/internal/parallel"
	"wasp/internal/prune"
	"wasp/internal/smq"
	"wasp/internal/trace"
	"wasp/internal/verify"
)

// Algorithm selects an SSSP implementation. AlgoWasp is the paper's
// contribution; the others are the evaluation's baselines plus two
// sequential references.
type Algorithm int

const (
	// AlgoWasp is the work-stealing shortest path algorithm (paper §4).
	AlgoWasp Algorithm = iota
	// AlgoDijkstra is sequential Dijkstra with a d-ary heap (the
	// work-efficiency and correctness reference).
	AlgoDijkstra
	// AlgoBellmanFord is sequential queue-based Bellman–Ford.
	AlgoBellmanFord
	// AlgoGAP is the GAP Benchmarking Suite's synchronous Δ-stepping
	// with bucket fusion.
	AlgoGAP
	// AlgoGBBS is Δ-stepping over Julienne-style centralized buckets.
	AlgoGBBS
	// AlgoDeltaStar is Δ*-stepping (Dong et al., SPAA 2021).
	AlgoDeltaStar
	// AlgoRho is ρ-stepping (Dong et al., SPAA 2021).
	AlgoRho
	// AlgoMultiQueue is parallel Dijkstra over the MultiQueue relaxed
	// priority queue.
	AlgoMultiQueue
	// AlgoGalois is asynchronous Δ-stepping over an OBIM-style
	// priority scheduler.
	AlgoGalois
	// AlgoSMQ is parallel Dijkstra over the Stealing MultiQueue
	// (Postnikova et al., PPoPP 2022) — an extension baseline from the
	// paper's related work (§6).
	AlgoSMQ
	// AlgoMBQ is parallel Dijkstra over the Multi Bucket Queue (Zhang
	// et al., SPAA 2024) — an extension baseline from the paper's
	// related work (§6).
	AlgoMBQ
	// AlgoRadius is radius-stepping (Blelloch et al., SPAA 2016) — an
	// extension baseline from the paper's related work (§6).
	AlgoRadius
	// AlgoSeqDelta is the original sequential Δ-stepping of Meyer and
	// Sanders (2003), with the light/heavy edge split — the
	// foundational algorithm of the paper's §2.
	AlgoSeqDelta
	// AlgoAlgebraic is Δ-stepping formulated as masked (min,+)
	// semiring matrix-vector products, in the GraphBLAS style the
	// paper's §6 cites (Sridhar et al., IPDPSW 2019).
	AlgoAlgebraic

	numAlgorithms // sentinel
)

var algoNames = [numAlgorithms]string{
	"wasp", "dijkstra", "bellman-ford", "gap", "gbbs",
	"delta-star", "rho", "multiqueue", "galois", "smq", "mbq",
	"radius", "seq-delta", "algebraic",
}

// String returns the algorithm's canonical name.
func (a Algorithm) String() string {
	if a < 0 || a >= numAlgorithms {
		return "unknown"
	}
	return algoNames[a]
}

// ParseAlgorithm resolves a canonical algorithm name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for i, n := range algoNames {
		if n == name {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("wasp: unknown algorithm %q (have %v)", name, Algorithms())
}

// Algorithms returns all algorithm names in declaration order.
func Algorithms() []string {
	out := make([]string, numAlgorithms)
	copy(out, algoNames[:])
	return out
}

// Parallel reports whether the algorithm uses multiple workers.
func (a Algorithm) Parallel() bool {
	return a != AlgoDijkstra && a != AlgoBellmanFord && a != AlgoSeqDelta
}

// StealPolicy selects Wasp's victim-selection strategy (paper §4.2).
type StealPolicy = core.StealPolicy

// Steal policies for Options.Steal.
const (
	// StealWasp is the paper's NUMA-tiered priority-aware protocol.
	StealWasp = core.PolicyWasp
	// StealRandom is traditional uniform random victim selection.
	StealRandom = core.PolicyRandom
	// StealTwoChoice picks the better of two random victims.
	StealTwoChoice = core.PolicyTwoChoice
)

// Topology declares a NUMA hierarchy for the steal protocol.
type Topology = numa.Topology

// Preset topologies mirroring the paper's two machines.
var (
	// TopologyEPYC is the paper's 128-core AMD EPYC 7713 layout.
	TopologyEPYC = numa.EPYC7713
	// TopologyXEON is the paper's Intel Xeon 6438Y+ layout.
	TopologyXEON = numa.XEON6438Y
)

// Options configures a Run. The zero value runs Wasp with Δ=1 and one
// worker.
type Options struct {
	// Algorithm selects the implementation (default AlgoWasp).
	Algorithm Algorithm
	// Delta is the Δ-coarsening factor for bucketed algorithms
	// (default 1 — the paper's recommended safe choice for Wasp on
	// skewed-degree graphs).
	Delta uint32
	// Workers is the number of parallel workers (default 1). Ignored
	// by the sequential algorithms.
	Workers int
	// Rho is the per-step vertex budget for AlgoRho (default 4096)
	// and the preprocessing ball size for AlgoRadius (default 8).
	Rho int
	// Stickiness is the MultiQueue stickiness parameter s, tuned per
	// graph in the paper (default 4). AlgoMultiQueue only.
	Stickiness int

	// Steal selects Wasp's steal policy; StealRetries bounds retries
	// for the random policies. AlgoWasp only.
	Steal        StealPolicy
	StealRetries int
	// Topology declares the NUMA hierarchy for Wasp's tiered stealing.
	// The zero value sizes a small hierarchy to Workers.
	Topology Topology

	// Optimization toggles (paper §4.4, Figure 7 ablation); Theta is
	// the neighborhood-decomposition threshold θ. AlgoWasp only.
	NoLeafPruning   bool
	NoDecomposition bool
	NoBidirectional bool
	Theta           int

	// PendantPruning strips pendant trees (maximal subtrees hanging
	// off the graph by one vertex) before the solve and restores their
	// distances afterwards — the graph-aware preprocessing the paper's
	// §4.4 cites as future work ([21], FCPC 2025). Works with every
	// algorithm on undirected graphs; skipped automatically when the
	// source itself is pendant or the graph is directed.
	PendantPruning bool

	// WarmStart, when non-nil, seeds the solve from a checkpoint of an
	// earlier, interrupted solve of the same (graph, source) pair
	// instead of starting from scratch: distances load as upper bounds
	// and workers rebuild the frontier with a repair scan over violated
	// triangle inequalities, converging to exactly the distances an
	// uninterrupted run produces. AlgoWasp only, incompatible with
	// PendantPruning; the checkpoint must match the graph (see
	// Checkpoint.Matches) and the run's source must equal
	// WarmStart.Source. Session users resume via Session.Resume
	// instead of this field.
	WarmStart *Checkpoint

	// CheckpointInterval, with CheckpointSink, enables periodic
	// checkpointing on a supervised Session: every interval the running
	// solve's upper-bound state is snapshotted — workers keep running;
	// the capture is a racy-but-valid atomic copy — and handed to the
	// sink. Supervision requires the preallocated session path
	// (AlgoWasp without PendantPruning); NewSession rejects other
	// configurations. Ignored by one-shot Run/RunContext. Zero disables.
	CheckpointInterval time.Duration

	// CheckpointSink receives each periodic (and stall-forced)
	// checkpoint, synchronously from the session's supervisor
	// goroutine. The snapshot's Dist reuses one buffer per run: the
	// sink must finish with it before returning — typically by calling
	// SaveCheckpoint — or copy it.
	CheckpointSink func(*Checkpoint)

	// StallTimeout arms a stall watchdog on a supervised Session: if
	// the solve makes no relaxation progress for this long, the
	// watchdog dumps per-worker scheduler state, emits a final forced
	// checkpoint to CheckpointSink (when set), cancels the run and
	// fails it with an error wrapping ErrStalled. Zero disables.
	// Ignored by one-shot Run/RunContext.
	StallTimeout time.Duration

	// Observer, when non-nil, collects the solve's scheduler internals:
	// per-worker work counters on every algorithm, plus the event trace
	// (bucket advances, steal outcomes per NUMA tier, idle transitions)
	// on AlgoWasp. The absent-observer hot path stays a nil check — no
	// interface dispatch, no allocation. One Observer serves one solve
	// at a time: NewSession binds it for the session's lifetime, Run
	// binds it per call, and a second concurrent user is rejected.
	Observer *Observer

	// CollectMetrics attaches per-worker counters to the Result.
	CollectMetrics bool
	// QueueTiming records time spent in shared-queue operations
	// (AlgoMultiQueue; the paper's Figure 2 breakdown).
	QueueTiming bool
	// Verify re-checks the output against the SSSP certificate before
	// returning (O(V+E); intended for tests and examples).
	Verify bool
}

// withDefaults returns a copy of o with the cross-cutting defaults
// applied. Every entry point (RunContext, NewSession, RunManyContext)
// goes through this before sizing anything — metrics sets and session
// preallocation must never see Workers <= 0.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Delta == 0 {
		o.Delta = 1
	}
	return o
}

// Progress quantifies how far a solve got. It matters most for
// degraded results — a deadline-expired solve hands back a partial
// upper-bound snapshot (Complete false), and Progress is what turns
// "partial" into a number a serving layer can report or alert on.
type Progress struct {
	// Settled is the fraction of vertices holding a finite tentative
	// distance at the moment the solve returned. For a complete run
	// this equals the reachable fraction; for a cancelled or
	// deadline-expired run it measures coverage of the partial
	// snapshot (the source is always settled, so it is > 0 whenever
	// the solve started).
	Settled float64
	// Relaxations is the number of edge relaxations attempted, plumbed
	// from the per-worker counters in internal/metrics. It is always
	// available on the preallocated Wasp session path (the solver owns
	// a metrics set); on other paths it is nonzero only when
	// CollectMetrics was set.
	Relaxations int64
}

// Result of an SSSP run.
type Result struct {
	// Dist maps every vertex to its shortest distance from the source
	// (Infinity when unreachable).
	Dist []uint32
	// Elapsed is the cumulative wall-clock time paid for these
	// distances, excluding graph construction and verification. For a
	// warm-started solve (Options.WarmStart, Session.Resume, or a
	// cache-internal nearest-source seed) it includes the prior wall
	// time the seed checkpoint had already accumulated; subtract
	// PriorElapsed for the time spent inside this process. Pool latency
	// stats and SolveObservation.Elapsed record only the in-process
	// portion.
	Elapsed time.Duration
	// PriorElapsed is the portion of Elapsed inherited from the warm
	// seed's checkpoint (zero for cold solves), so
	// Elapsed - PriorElapsed is always this solve's own wall time.
	PriorElapsed time.Duration
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Metrics holds aggregated counters when CollectMetrics was set.
	Metrics *metrics.Worker
	// Steps is the number of synchronous steps, for the synchronous
	// algorithms (0 otherwise).
	Steps int64
	// Complete reports whether the solve ran to termination. It is
	// false only when the run was cancelled (see RunContext), in which
	// case Dist is a partial snapshot: every finite entry is a valid
	// upper bound on the true distance, but not necessarily final.
	Complete bool
	// Progress quantifies coverage of Dist — see the Progress type.
	Progress Progress
}

// Reached returns the number of vertices with finite distance.
func (r *Result) Reached() int {
	n := 0
	for _, d := range r.Dist {
		if d != Infinity {
			n++
		}
	}
	return n
}

// fillProgress computes the progress signal from the distance snapshot
// and the run's metrics set (nil when none was collected).
func (r *Result) fillProgress(m *metrics.Set) {
	if len(r.Dist) > 0 {
		r.Progress.Settled = float64(r.Reached()) / float64(len(r.Dist))
	}
	if m != nil {
		r.Progress.Relaxations = m.Totals().Relaxations
	}
}

// timeIt measures one invocation of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// verifyResult applies the SSSP certificate check.
func verifyResult(g *Graph, source Vertex, d []uint32) error {
	if err := verify.Certificate(g, source, d); err != nil {
		return fmt.Errorf("wasp: invalid result: %w", err)
	}
	return nil
}

// ErrCancelled is returned (wrapped) by RunContext when the context is
// cancelled before the solve terminates. Test with errors.Is.
var ErrCancelled = errors.New("wasp: run cancelled")

// Run computes single-source shortest paths on g from source.
func Run(g *Graph, source Vertex, opt Options) (*Result, error) {
	return RunContext(context.Background(), g, source, opt)
}

// RunContext is Run with cooperative cancellation. Cancellation is
// polled at chunk, bucket, step or queue-pop boundaries — never per
// edge relaxation — so it costs nothing measurable and takes effect
// within one grain of work. When ctx is cancelled before the solve
// terminates, RunContext returns an error wrapping both ErrCancelled
// and ctx.Err() together with a non-nil partial Result: Complete is
// false and Dist holds the tentative distances at the moment the
// workers drained (finite entries are valid upper bounds). Verify is
// skipped for cancelled runs, whose output is legitimately partial.
//
// RunContext also contains worker panics: a panic inside any parallel
// solver cancels its siblings (no deadlocked joins, no leaked
// goroutines) and surfaces as an error carrying the worker id and
// stack trace.
func RunContext(ctx context.Context, g *Graph, source Vertex, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("wasp: nil graph")
	}
	if int(source) >= g.NumVertices() {
		return nil, fmt.Errorf("wasp: source %d out of range for %d vertices", source, g.NumVertices())
	}
	opt = opt.withDefaults()
	if err := validateWarmStart(g, source, opt); err != nil {
		return nil, err
	}
	var m *metrics.Set
	var tl *trace.Log
	if opt.Observer != nil {
		// The observer is bound for the duration of this call so two
		// concurrent runs cannot race on its buffers.
		if err := opt.Observer.bind(); err != nil {
			return nil, err
		}
		defer opt.Observer.release()
		tl, m = opt.Observer.attach(opt.Workers)
	} else if opt.CollectMetrics || opt.QueueTiming {
		m = metrics.NewSet(opt.Workers)
	}
	return runContext(ctx, g, source, opt, m, tl)
}

// warmStartSupported reports whether the option set can seed a solve
// from a prior distance array at all: warm starts are a Wasp-only
// facility (the repair scan lives in the Wasp solver) and incompatible
// with PendantPruning (the pruned core is a different graph than the
// one a snapshot describes). Every warm-seeding path — the public
// Options.WarmStart field, Session.Resume, and the cache's internal
// nearest-source seeding — consults this one helper, so no path can
// smuggle a seed past the compatibility rules.
func warmStartSupported(opt Options) error {
	if opt.Algorithm != AlgoWasp {
		return fmt.Errorf("wasp: WarmStart requires AlgoWasp, not %s", opt.Algorithm)
	}
	if opt.PendantPruning {
		return fmt.Errorf("wasp: WarmStart is incompatible with PendantPruning")
	}
	return nil
}

// validateWarmStart checks the Options.WarmStart contract: a supported
// option set (see warmStartSupported), snapshot and graph agree in
// both shape and content fingerprint, and the run resumes the
// snapshot's own source.
func validateWarmStart(g *Graph, source Vertex, opt Options) error {
	cp := opt.WarmStart
	if cp == nil {
		return nil
	}
	if err := warmStartSupported(opt); err != nil {
		return err
	}
	if err := cp.Matches(g.NumVertices(), g.NumEdges(), g.Directed()); err != nil {
		return err
	}
	if err := cp.MatchesWeights(g.WeightFingerprint()); err != nil {
		return err
	}
	if Vertex(cp.Source) != source {
		return fmt.Errorf("wasp: resuming source %d from a checkpoint of source %d", source, cp.Source)
	}
	return nil
}

// runContext is RunContext after validation: opt has defaults applied,
// m is the caller-owned metrics set (nil when not collecting) and tl
// the caller-owned trace log (nil when not tracing; AlgoWasp only).
// Session.Run's fallback path enters here directly so session-owned
// collectors are reused per call instead of reallocated. When
// opt.Observer is set, the caller has already attached it (m and tl
// are its collectors) and the finished run is absorbed into its
// cumulative totals here.
func runContext(ctx context.Context, g *Graph, source Vertex, opt Options, m *metrics.Set, tl *trace.Log) (*Result, error) {
	// One token per solve: the context watcher trips it, worker panics
	// trip it, and every solver loop polls it.
	tok := new(parallel.Token)
	stopWatch := parallel.WatchContext(ctx, tok)
	defer stopWatch()

	res := &Result{Algorithm: opt.Algorithm}
	start := time.Now()

	// Pendant pruning wraps any solver: solve the stripped core, then
	// reconstruct the pendant distances. The prep time is inside
	// Elapsed — the preprocessing is part of the algorithm's cost.
	solveGraph, original := g, g
	var pruned *prune.Pruned
	if opt.PendantPruning {
		p := prune.Prepare(g)
		if p.Stripped() > 0 && p.SourceUsable(source) {
			pruned = p
			solveGraph = p.Core
		}
	}
	g = solveGraph

	switch opt.Algorithm {
	case AlgoWasp:
		var warm []uint32
		if opt.WarmStart != nil {
			warm = opt.WarmStart.Dist
		}
		r := core.Run(g, source, core.Options{
			Delta:           opt.Delta,
			Workers:         opt.Workers,
			Topology:        opt.Topology,
			Policy:          opt.Steal,
			Retries:         opt.StealRetries,
			NoLeafPruning:   opt.NoLeafPruning,
			NoDecomposition: opt.NoDecomposition,
			NoBidirectional: opt.NoBidirectional,
			Theta:           opt.Theta,
			Metrics:         m,
			Trace:           tl,
			Timing:          opt.Observer != nil && opt.Observer.cfg.Timing,
			WarmStart:       warm,
			Cancel:          tok,
		})
		res.Dist = r.Dist
	case AlgoDijkstra:
		r := dijkstra.RunToken(g, source, tok)
		res.Dist = r.Dist
		if m != nil {
			m.Workers[0].Relaxations = r.Relaxations
		}
	case AlgoBellmanFord:
		res.Dist = bellmanford.RunToken(g, source, tok)
	case AlgoGAP:
		r := gapds.Run(g, source, gapds.Options{
			Delta: opt.Delta, Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	case AlgoGBBS:
		r := gbbs.Run(g, source, gbbs.Options{
			Delta: opt.Delta, Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	case AlgoDeltaStar:
		r := stepping.Run(g, source, stepping.Options{
			Algorithm: stepping.DeltaStar, Delta: opt.Delta,
			Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	case AlgoRho:
		r := stepping.Run(g, source, stepping.Options{
			Algorithm: stepping.Rho, Rho: opt.Rho,
			Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	case AlgoMultiQueue:
		r := mqsssp.Run(g, source, mqsssp.Options{
			Workers: opt.Workers, Stickiness: opt.Stickiness,
			Timing: opt.QueueTiming, Metrics: m, Cancel: tok,
		})
		res.Dist = r.Dist
	case AlgoGalois:
		r := galois.Run(g, source, galois.Options{
			Delta: opt.Delta, Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist = r.Dist
	case AlgoSMQ:
		res.Dist = relaxed.RunSMQ(g, source, smq.Config{},
			relaxed.Options{Workers: opt.Workers, Metrics: m, Cancel: tok})
	case AlgoMBQ:
		res.Dist = relaxed.RunMBQ(g, source, mbq.Config{Delta: uint64(opt.Delta)},
			relaxed.Options{Workers: opt.Workers, Metrics: m, Cancel: tok})
	case AlgoRadius:
		r := radius.Run(g, source, radius.Options{
			Rho: opt.Rho, Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	case AlgoSeqDelta:
		r := seqdelta.Run(g, source, seqdelta.Options{Delta: opt.Delta, Cancel: tok})
		res.Dist, res.Steps = r.Dist, r.Buckets
		if m != nil {
			m.Workers[0].Relaxations = r.LightRelaxations + r.HeavyRelaxations
		}
	case AlgoAlgebraic:
		r := algebra.Run(g, source, algebra.Options{
			Delta: opt.Delta, Workers: opt.Workers, Metrics: m, Cancel: tok,
		})
		res.Dist, res.Steps = r.Dist, r.Steps
	default:
		return nil, fmt.Errorf("wasp: unknown algorithm %d", opt.Algorithm)
	}
	if pruned != nil {
		pruned.Restore(res.Dist)
	}
	res.Elapsed = time.Since(start)
	if opt.WarmStart != nil {
		// A resumed solve's clock continues from the checkpoint: Elapsed
		// is the total paid for these distances, not just the tail.
		// PriorElapsed records the inherited portion so latency stats
		// can separate this-process time from prior-process time.
		res.PriorElapsed = opt.WarmStart.Elapsed
		res.Elapsed += res.PriorElapsed
	}
	res.fillProgress(m)

	if m != nil {
		t := m.Totals()
		res.Metrics = &t
	}
	if opt.Observer != nil {
		// Workers have joined: fold this run's counters into the
		// observer's cumulative totals (even for partial runs — the
		// work happened).
		opt.Observer.absorb()
	}
	if pe := tok.Err(); pe != nil {
		return nil, fmt.Errorf("wasp: %s solver panicked: %w", opt.Algorithm, pe)
	}
	if err := ctx.Err(); err != nil {
		// Cancelled: the distances are a legitimate partial snapshot,
		// so hand them back alongside the error and skip verification.
		return res, fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	res.Complete = true
	if opt.Verify {
		if err := verify.Certificate(original, source, res.Dist); err != nil {
			return nil, fmt.Errorf("wasp: %s produced an invalid result: %w", opt.Algorithm, err)
		}
	}
	return res, nil
}
