package wasp_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"wasp"
)

// TestRunContextPreCancelled: a context that is already cancelled must
// come back promptly with a wrapped ErrCancelled and an incomplete
// partial result — for every algorithm, parallel and sequential alike.
// The per-algorithm watchdog turns a termination bug into a test
// failure instead of a suite hang.
func TestRunContextPreCancelled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g, err := wasp.GenerateWorkload("kron", wasp.WorkloadConfig{N: 5000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	src := wasp.SourceInLargestComponent(g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, name := range wasp.Algorithms() {
		algo, err := wasp.ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				res *wasp.Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := wasp.RunContext(ctx, g, src, wasp.Options{
					Algorithm: algo, Workers: 3, Delta: 8,
				})
				done <- outcome{res, err}
			}()
			var out outcome
			select {
			case out = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("pre-cancelled RunContext hung")
			}
			if !errors.Is(out.err, wasp.ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", out.err)
			}
			if !errors.Is(out.err, context.Canceled) {
				t.Fatalf("err = %v does not wrap context.Canceled", out.err)
			}
			if out.res == nil {
				t.Fatal("cancelled run returned no partial result")
			}
			if out.res.Complete {
				t.Fatal("cancelled run reported Complete")
			}
			if out.res.Dist[src] != 0 {
				t.Fatalf("d(source) = %d in partial snapshot", out.res.Dist[src])
			}
		})
	}
}

// TestRunContextBackgroundCompletes: with a plain background context,
// RunContext is exactly Run — complete, verified results.
func TestRunContextBackgroundCompletes(t *testing.T) {
	g := wasp.FromEdges(3, true, []wasp.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
	})
	res, err := wasp.RunContext(context.Background(), g, 0, wasp.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("uncancelled run not Complete")
	}
	if res.Dist[2] != 2 {
		t.Fatalf("d(2) = %d", res.Dist[2])
	}
}

// TestRunContextMidFlightCancel cancels a running Wasp solve. Timing
// decides whether the solve finishes first, so both outcomes are legal;
// what is checked is the invariant pair: complete+verified or
// cancelled+upper-bound snapshot — never a hang, never an underestimate.
func TestRunContextMidFlightCancel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g, err := wasp.GenerateWorkload("road-usa", wasp.WorkloadConfig{N: 50000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	src := wasp.SourceInLargestComponent(g, 1)
	ref, err := wasp.Run(g, src, wasp.Options{Algorithm: wasp.AlgoDijkstra})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	res, err := wasp.RunContext(ctx, g, src, wasp.Options{
		Algorithm: wasp.AlgoWasp, Workers: 4, Delta: 16,
	})
	switch {
	case err == nil:
		if !res.Complete {
			t.Fatal("no error but Complete unset")
		}
	case errors.Is(err, wasp.ErrCancelled):
		if res == nil || res.Complete {
			t.Fatalf("cancelled result inconsistent: %+v", res)
		}
		for v := range ref.Dist {
			if res.Dist[v] < ref.Dist[v] {
				t.Fatalf("partial d(%d) = %d below true distance %d", v, res.Dist[v], ref.Dist[v])
			}
		}
	default:
		t.Fatal(err)
	}
}

// TestRunContextDeadline: an expired deadline surfaces as ErrCancelled
// wrapping context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	g := wasp.FromEdges(2, true, []wasp.Edge{{From: 0, To: 1, W: 1}})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := wasp.RunContext(ctx, g, 0, wasp.Options{})
	if !errors.Is(err, wasp.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

// TestRunManyContextCancelled: a cancelled batch keeps the solves that
// finished, appends the interrupted solve's partial snapshot (the same
// Result a single RunContext would return), and reports the
// cancellation.
func TestRunManyContextCancelled(t *testing.T) {
	g := wasp.FromEdges(3, true, []wasp.Edge{
		{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := wasp.RunManyContext(ctx, g, []wasp.Vertex{0, 1, 2}, wasp.Options{})
	if !errors.Is(err, wasp.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if len(results) != 1 {
		t.Fatalf("pre-cancelled batch returned %d results, want the partial solve", len(results))
	}
	if results[0].Complete {
		t.Fatal("interrupted solve reported Complete")
	}
	if results[0].Dist[0] != 0 {
		t.Fatalf("partial d(source) = %d", results[0].Dist[0])
	}
	// And an uncancelled batch still works.
	results, err = wasp.RunManyContext(context.Background(), g, []wasp.Vertex{0, 1}, wasp.Options{})
	if err != nil || len(results) != 2 {
		t.Fatalf("results = %d, err = %v", len(results), err)
	}
	for _, r := range results {
		if !r.Complete {
			t.Fatal("batch result not Complete")
		}
	}
}
