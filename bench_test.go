package wasp_test

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (DESIGN.md §3 maps each to its experiment), plus
// per-algorithm microbenchmarks on the main workload classes.
//
// The experiment benchmarks run the corresponding harness experiment
// once per b.N iteration at a bench-friendly scale; the rendered tables
// go to the benchmark log on the first iteration so `go test -bench=.`
// output doubles as a mini reproduction report. For the full-scale
// reproduction use `go run ./cmd/experiments`.

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"wasp"
	"wasp/internal/experiments"
)

const benchScale = 4096

func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{
		Scale:   benchScale,
		Workers: runtime.GOMAXPROCS(0),
		Trials:  1,
		Seed:    42,
	})
}

// benchExperiment runs one harness experiment per iteration and logs
// its table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	r := benchRunner()
	var first bytes.Buffer
	r.Cfg.Out = &first
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(r); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", first.String())
			r.Cfg.Out = io.Discard
		}
	}
}

func BenchmarkTab1Datasets(b *testing.B)         { benchExperiment(b, "tab1") }
func BenchmarkFig1BarrierBreakdown(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2MQBreakdown(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig4DeltaTuning(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5Heatmap(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6Scaling(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig7Ablation(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8PriorityDrift(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkTab2Speedups(b *testing.B)         { benchExperiment(b, "tab2") }
func BenchmarkTab3SelfSpeedup(b *testing.B)      { benchExperiment(b, "tab3") }
func BenchmarkStealPolicies(b *testing.B)        { benchExperiment(b, "steal") }
func BenchmarkFig9Appendix(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkExtQueueSubstrates(b *testing.B)   { benchExperiment(b, "ext") }
func BenchmarkExt2Algorithms(b *testing.B)       { benchExperiment(b, "ext2") }
func BenchmarkWaspBreakdown(b *testing.B)        { benchExperiment(b, "breakdown") }

// Per-algorithm microbenchmarks over three structurally distinct
// workloads (skewed, road, star), reporting edges/second.
func BenchmarkAlgorithms(b *testing.B) {
	for _, wl := range []string{"kron", "road-usa", "mawi"} {
		g, err := wasp.GenerateWorkload(wl, wasp.WorkloadConfig{N: benchScale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		src := wasp.SourceInLargestComponent(g, 42)
		for _, name := range wasp.Algorithms() {
			algo, _ := wasp.ParseAlgorithm(name)
			b.Run(fmt.Sprintf("%s/%s", wl, name), func(b *testing.B) {
				opt := wasp.Options{
					Algorithm: algo,
					Workers:   runtime.GOMAXPROCS(0),
					Delta:     16,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := wasp.Run(g, src, opt); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(g.NumEdges()) // edges per op ~ relaxation throughput
			})
		}
	}
}

// BenchmarkWaspDeltaSweep isolates the Δ sensitivity of Wasp itself
// (the paper's "Δ=1 is safe" claim, Figure 4).
func BenchmarkWaspDeltaSweep(b *testing.B) {
	g, err := wasp.GenerateWorkload("twitter", wasp.WorkloadConfig{N: benchScale, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	src := wasp.SourceInLargestComponent(g, 42)
	for _, delta := range []uint32{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("delta-%d", delta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wasp.Run(g, src, wasp.Options{
					Algorithm: wasp.AlgoWasp,
					Workers:   runtime.GOMAXPROCS(0),
					Delta:     delta,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWaspWorkers isolates worker scaling of Wasp (Figure 6's
// Wasp series).
func BenchmarkWaspWorkers(b *testing.B) {
	g, err := wasp.GenerateWorkload("road-usa", wasp.WorkloadConfig{N: benchScale, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	src := wasp.SourceInLargestComponent(g, 42)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wasp.Run(g, src, wasp.Options{
					Algorithm: wasp.AlgoWasp, Workers: p, Delta: 16,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
