package wasp

import (
	"io"

	"wasp/internal/gen"
	"wasp/internal/graph"
)

// Re-exported graph types. The aliases make the internal implementation
// usable through the public API without widening the import surface.
type (
	// Graph is an immutable weighted graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Edge is a weighted directed edge.
	Edge = graph.Edge
	// Vertex is a 32-bit vertex identifier.
	Vertex = graph.Vertex
	// Weight is a 32-bit non-negative edge weight.
	Weight = graph.Weight
	// GraphStats summarizes a graph's structure.
	GraphStats = graph.Stats
)

// Infinity is the distance value of unreachable vertices.
const Infinity = graph.Infinity

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, directed bool, edges []Edge) *Graph {
	return graph.FromEdges(n, directed, edges)
}

// ReadTextGraph parses a weighted edge list ("u v w" lines with an
// optional "n <count> <directed|undirected>" header).
func ReadTextGraph(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// WriteTextGraph writes g as a weighted edge list.
func WriteTextGraph(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadBinaryGraph loads a graph in the WSPG binary CSR format.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinaryGraph writes g in the WSPG binary CSR format.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// Stats scans g and returns its structural summary.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// SourceInLargestComponent returns a deterministic vertex in the largest
// weakly-connected component — the paper's methodology for picking SSSP
// sources (§5).
func SourceInLargestComponent(g *Graph, seed uint64) Vertex {
	return graph.SourceInLargestComponent(g, seed)
}

// SourcesInLargestComponent returns n such vertices, one per
// consecutive seed, amortizing the component analysis across the whole
// batch; element i equals SourceInLargestComponent(g, seed+i).
func SourcesInLargestComponent(g *Graph, seed uint64, n int) []Vertex {
	return graph.SourcesInLargestComponent(g, seed, n)
}

// RelabelByDegree returns a copy of g with vertex ids assigned in
// decreasing-degree order plus the old→new mapping — the
// vertex-reordering preprocessing of GPU SSSP systems (paper [68]) that
// also improves CSR locality on skewed CPU workloads. Distances are
// invariant under the relabeling; use ApplyPermutation to map a
// relabeled solve's distances back to the original ids.
func RelabelByDegree(g *Graph) (*Graph, []Vertex) {
	return graph.RelabelByDegree(g)
}

// ApplyPermutation remaps a per-vertex array computed on a relabeled
// graph back to original vertex ids.
func ApplyPermutation(in []uint32, oldToNew []Vertex) []uint32 {
	return graph.ApplyPermutation(in, oldToNew)
}

// WeightScheme selects how generated edge weights are drawn.
type WeightScheme = gen.WeightScheme

// Weight schemes for GenerateWorkload.
const (
	// WeightUniform draws integers uniformly from [1, 255] (the GAP
	// Benchmarking Suite scheme used for most paper graphs).
	WeightUniform = gen.WeightUniform
	// WeightUnit assigns weight 1 to every edge.
	WeightUnit = gen.WeightUnit
	// WeightNormal draws from the appendix's truncated normal
	// distribution (mean 1, σ = sqrt(|V|/|E|)).
	WeightNormal = gen.WeightNormal
)

// WorkloadConfig parameterizes a workload generator.
type WorkloadConfig = gen.Config

// GenerateWorkload builds the named synthetic workload — a scale model
// of one of the paper's evaluation graphs. Names follow the paper's
// datasets ("twitter", "road-usa", "mawi", …); Workloads lists them.
func GenerateWorkload(name string, cfg WorkloadConfig) (*Graph, error) {
	return gen.Generate(name, cfg)
}

// Workloads returns the available workload names in the paper's Table 1
// order, optionally including the appendix's Table 4 graphs.
func Workloads(includeAppendix bool) []string { return gen.Names(includeAppendix) }
